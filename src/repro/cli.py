"""Command-line interface: record, replay and inspect from a shell.

::

    python -m repro record fft -o fft.dlrn --scale 0.5
    python -m repro inspect fft.dlrn --timeline
    python -m repro replay fft.dlrn --perturb-seed 7
    python -m repro replay fft.dlrn --from-commit 80   # interval replay
    python -m repro modes barnes --scale 0.4 --jobs 4
    python -m repro bench fig10 fig11 --jobs 4         # parallel sweep

Workload names are the SPLASH-2 stand-ins (barnes, cholesky, fft, fmm,
lu, ocean, radiosity, radix, raytrace, water-ns, water-sp) plus sjbb2k
and sweb2005.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.analysis.inspect import (
    commit_timeline,
    describe_recording,
    interleaving_strip,
    per_processor_summary,
)
from repro.analysis.compare import diff_recordings
from repro.analysis.races import find_contended_lines, replay_window_for
from repro.analysis.report import format_table
from repro.core.delorean import DeLoreanSystem
from repro.core.modes import ExecutionMode
from repro.core.replayer import ReplayPerturbation
from repro.core.serialization import load_recording, save_recording
from repro.errors import ReproError
from repro.faults import (
    FaultyJobFn,
    execute_chaos_spec,
    run_campaign,
)
from repro.runner.retry import RetryPolicy
from repro.runner import (
    ConsoleReporter,
    NullReporter,
    ResultCache,
    Runner,
    RunSpec,
    reporter_from_option,
)
from repro.telemetry import (
    EventTracer,
    chrome_trace,
    commit_spans_per_track,
    diagnose_replay,
    write_events_jsonl,
)
from repro.runner.figures import (
    DEFAULT_APPS,
    FIGURES,
    resolve_figures,
    specs_for,
    validate_apps,
)
from repro.workloads import (
    BUG_ZOO,
    COMMERCIAL_APPS,
    SPLASH2_APPS,
    commercial_program,
    splash2_program,
)
from repro.workloads.stress import (
    handoff_program,
    racey_program,
    squash_livelock_program,
    starvation_program,
)

# Determinism-stress and stall-zoo workloads (repro.workloads.stress).
# The zoo specimens (starvation, squash-livelock) hang an unsupervised
# run by construction -- record them with --supervised.
STRESS_APPS = {
    "racey": lambda scale, seed: racey_program(
        rounds=max(1, int(240 * scale)), seed=seed),
    "handoff": lambda scale, seed: handoff_program(
        laps=max(1, int(12 * scale))),
    "starvation": lambda scale, seed: starvation_program(),
    "squash-livelock": lambda scale, seed: squash_livelock_program(),
}

_MODES = {
    "order-and-size": ExecutionMode.ORDER_AND_SIZE,
    "order-only": ExecutionMode.ORDER_ONLY,
    "picolog": ExecutionMode.PICOLOG,
    # Table 2's fourth quadrant, implemented to measure why the paper
    # dismissed it (see benchmarks/bench_table2_quadrants.py).
    "size-only": ExecutionMode.SIZE_ONLY,
}


def _program_for(args):
    if args.workload in STRESS_APPS:
        return STRESS_APPS[args.workload](args.scale, args.seed)
    if args.workload in COMMERCIAL_APPS:
        return commercial_program(args.workload, scale=args.scale,
                                  seed=args.seed)
    return splash2_program(args.workload, scale=args.scale,
                           seed=args.seed)


def _system_for(args) -> DeLoreanSystem:
    return DeLoreanSystem(
        mode=_MODES[args.mode],
        chunk_size=args.chunk_size,
        stratify=args.stratify,
    )


def _cmd_record(args) -> int:
    supervised = (args.supervised or args.deadline is not None
                  or args.max_log_bytes is not None
                  or args.journal is not None)
    if supervised:
        return _cmd_record_supervised(args)
    system = _system_for(args)
    recording = system.record(_program_for(args),
                              checkpoint_every=args.checkpoint_every)
    print(describe_recording(recording))
    if args.output:
        blob = save_recording(recording)
        with open(args.output, "wb") as handle:
            handle.write(blob)
        print(f"\nwrote {len(blob):,} bytes to {args.output}")
    return 0


def _cmd_record_supervised(args) -> int:
    from repro.guard import Budgets, save_segmented, supervise_record

    system = _system_for(args)
    budgets = Budgets(
        deadline_seconds=args.deadline,
        max_log_bytes_per_proc=args.max_log_bytes,
    )
    report = supervise_record(
        _program_for(args),
        mode=system.mode,
        mode_config=system.mode_config,
        budgets=budgets,
        journal_path=args.journal,
        flush_every=args.flush_every,
        degrade=not args.no_degrade,
        verify_segments=args.verify,
        stochastic_overflow_rate=system.stochastic_overflow_rate,
        checkpoint_every=args.checkpoint_every,
    )
    print("supervised record:")
    print(report.summary())
    if report.ok and args.output:
        if report.recording is not None:
            blob = save_recording(report.recording)
        else:
            blob = save_segmented(report.segmented)
        with open(args.output, "wb") as handle:
            handle.write(blob)
        print(f"wrote {len(blob):,} bytes to {args.output}")
    return 0 if report.ok else 2


def _load(path: str):
    with open(path, "rb") as handle:
        return load_recording(handle.read())


def _cmd_replay(args) -> int:
    recording = _load(args.recording)
    system = DeLoreanSystem(
        mode=recording.mode_config.mode,
        machine_config=recording.machine_config,
        mode_config=recording.mode_config,
    )
    perturbation = (ReplayPerturbation(seed=args.perturb_seed)
                    if args.perturb_seed is not None else None)
    if args.from_commit is not None:
        if args.strata:
            print("error: --strata cannot combine with --from-commit "
                  "(a checkpoint may fall inside a stratum)",
                  file=sys.stderr)
            return 2
        result = system.replay_interval(
            recording, at_commit=args.from_commit,
            perturbation=perturbation)
        print(f"interval replay from commit <= {args.from_commit}:")
    else:
        result = system.replay(recording, perturbation=perturbation,
                               use_strata=args.strata)
    print(f"  {result.determinism.summary()}")
    if recording.stats.cycles and args.from_commit is None:
        speed = recording.stats.cycles / result.cycles
        print(f"  replay took {result.cycles:,.0f} cycles "
              f"({speed:.2f}x the recording)")
    return 0 if result.determinism.matches else 1


def _mode_from_spelling(text: str) -> str:
    """Resolve a --mode spelling to its canonical label.

    Tolerant of separators: ``orderonly``, ``order_only`` and
    ``order-only`` all name the same mode.
    """
    key = text.lower().replace("-", "").replace("_", "")
    for label in _MODES:
        if label.replace("-", "") == key:
            return label
    raise ReproError(f"unknown mode {text!r} (expected one of: "
                     + ", ".join(sorted(_MODES)) + ")")


def _cmd_trace(args) -> int:
    label = _mode_from_spelling(args.mode)
    system = DeLoreanSystem(mode=_MODES[label],
                            chunk_size=args.chunk_size)
    record_tracer = (EventTracer()
                     if args.phase in ("record", "both") else None)
    recording = system.record(_program_for(args), tracer=record_tracer)
    tracer = record_tracer
    status = 0
    if args.phase in ("replay", "both"):
        replay_tracer = EventTracer()
        report = diagnose_replay(recording, tracer=replay_tracer)
        if report.diverged:
            print(report.render(), file=sys.stderr)
            status = 1
        else:
            print("replay verified: deterministic")
        if args.phase == "replay":
            tracer = replay_tracer
    stats = recording.stats
    document = chrome_trace(
        tracer.events,
        process_name=f"repro {args.workload} ({label})",
        metadata={
            "app": args.workload,
            "mode": label,
            "phase": args.phase,
            "scale": args.scale,
            "seed": args.seed,
            "run_stats": stats.as_dict(),
        })
    print(f"captured {len(tracer.events)} events on "
          f"{len(tracer.tracks())} tracks")
    if args.phase in ("record", "both"):
        # The artifact's acceptance invariant: per-processor commit
        # spans in the timeline equal the run's RunStats.
        spans = commit_spans_per_track(document)
        bad = sorted(
            proc for proc, pstats in stats.per_processor.items()
            if spans.get(f"p{proc}", 0) != pstats.chunks_committed)
        if bad:
            print(f"WARNING: trace commit spans disagree with "
                  f"RunStats on processor(s) {bad}", file=sys.stderr)
            status = status or 1
        else:
            total = sum(p.chunks_committed
                        for p in stats.per_processor.values())
            print(f"trace matches RunStats: {total} committed chunks "
                  f"across {len(stats.per_processor)} processors")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, separators=(",", ":"))
            handle.write("\n")
        print(f"wrote Chrome-trace JSON to {args.out} "
              f"(load it in ui.perfetto.dev)")
    if args.events:
        write_events_jsonl(tracer.events, args.events)
        print(f"wrote event stream to {args.events}")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(tracer.metrics.as_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics to {args.metrics}")
    return status


def _cmd_inspect(args) -> int:
    recording = _load(args.recording)
    print(describe_recording(recording))
    print()
    print(per_processor_summary(recording))
    if args.timeline:
        print()
        print(commit_timeline(recording, limit=args.limit))
    if args.interleaving:
        print()
        print(interleaving_strip(recording))
    return 0


def _cmd_diff(args) -> int:
    left = _load(args.left)
    right = _load(args.right)
    diff = diff_recordings(left, right)
    print(diff.summary())
    return 0 if diff.identical else 1


def _cmd_races(args) -> int:
    recording = _load(args.recording)
    report = find_contended_lines(recording,
                                  include_dma=not args.no_dma)
    print(report.summary(top=args.top))
    if report.lines and args.replay:
        line = report.lines[0]
        start, length = replay_window_for(line)
        end = start + length - 1
        store = recording.interval_checkpoints
        if store is None or not len(store):
            print("error: the recording has no interval checkpoints; "
                  "record with --checkpoint-every N to enable "
                  "--replay", file=sys.stderr)
            return 2
        system = DeLoreanSystem(
            mode=recording.mode_config.mode,
            machine_config=recording.machine_config,
            mode_config=recording.mode_config,
        )
        if store.checkpoints[0].commit_index <= start:
            checkpoint = store.at_or_before(start)
            print(f"\nReplaying commits {checkpoint.commit_index}.."
                  f"{end} (checkpoint at {checkpoint.commit_index}, "
                  f"tightest pair in {start}..{end})...")
            result = system.replay_interval(
                recording, checkpoint=checkpoint,
                length=end - checkpoint.commit_index + 1)
        else:
            print(f"\nNo checkpoint precedes commit {start}; full "
                  f"replay instead (tightest pair in {start}..{end})"
                  f"...")
            result = system.replay(recording)
        print(f"  {result.determinism.summary()}")
        return 0 if result.determinism.matches else 1
    return 0


def _make_runner(args, verbose: bool = True) -> Runner:
    """A Runner configured from the shared --jobs/--no-cache/--timeout
    (and, where offered, --report) options."""
    try:
        reporter = reporter_from_option(
            getattr(args, "report", None),
            ConsoleReporter(verbose=verbose and args.jobs > 1))
    except ValueError as error:
        raise ReproError(str(error)) from None
    return Runner(
        jobs=max(1, args.jobs),
        cache=False if args.no_cache else ResultCache(),
        timeout=getattr(args, "timeout", None),
        reporter=reporter,
    )


def _cmd_modes(args) -> int:
    # The mode comparison is itself a small sweep: 2 jobs per mode
    # (record + verified replay), fanned through the runner so
    # --jobs parallelizes it and repeated invocations hit the cache.
    specs: dict[str, tuple[RunSpec, RunSpec]] = {}
    for label, mode in _MODES.items():
        record = RunSpec.record(args.workload, mode, scale=args.scale,
                                seed=args.seed)
        replay = RunSpec.replay(
            args.workload, mode, scale=args.scale, seed=args.seed,
            perturb_seed=ReplayPerturbation().seed)
        specs[label] = (record, replay)
    runner = _make_runner(args)
    artifacts = runner.artifacts_by_hash(
        [spec for pair in specs.values() for spec in pair])
    rows = []
    for label, (record, replay) in specs.items():
        recorded = artifacts.get(record.content_hash())
        replayed = artifacts.get(replay.content_hash())
        if recorded is None or replayed is None:
            rows.append([label, "FAILED", "-", "-"])
            continue
        metrics = recorded["metrics"]
        rows.append([
            label,
            f"{metrics['cycles']:,.0f}",
            f"{metrics['log_bits_per_proc_per_kiloinst_raw']:.2f}",
            "yes" if replayed["metrics"]["matches"] else "NO",
        ])
    print(format_table(
        ["mode", "record cycles", "log bits/proc/kinst",
         "replay verified"],
        rows, title=f"Execution-mode comparison on {args.workload}"))
    return 0 if runner.metrics.failed == 0 else 1


def _cmd_explore(args) -> int:
    from repro.explore import run_exploration

    app = args.workload
    if app in BUG_ZOO:
        app = f"zoo:{app}"
    label = _mode_from_spelling(args.mode)
    tracer = EventTracer()
    # The campaign runs many tiny waves; per-wave progress lines are
    # noise, so default to the null reporter (--report overrides).
    try:
        reporter = reporter_from_option(args.report, NullReporter())
    except ValueError as error:
        raise ReproError(str(error)) from None
    runner = Runner(
        jobs=max(1, args.jobs),
        cache=False if args.no_cache else ResultCache(),
        timeout=args.timeout,
        reporter=reporter,
    )
    report = run_exploration(
        app, _MODES[label],
        budget=args.budget,
        campaign_seed=args.campaign_seed,
        change_points=args.change_points,
        stop_on_first=not args.exhaustive,
        bisect=not args.no_bisect,
        num_threads=args.threads,
        runner=runner, tracer=tracer)
    print(report.summary())
    for result in report.results:
        if result.outcome != "pass":
            print(f"  {result.outcome:10s} [{result.source}] "
                  f"{result.classification}: {result.detail}")
    bisection = report.bisection
    if bisection and "error" in bisection:
        print(f"  bisection failed: {bisection['error']}")
        bisection = None
    if bisection:
        print(f"  minimal repro: {bisection['prefix_length']} "
              f"prescribed grant(s) (full schedule "
              f"{bisection['full_length']}), first divergence at "
              f"commit {bisection['divergence_commit']}, "
              f"debugger-verified="
              f"{'yes' if bisection['verified'] else 'NO'} "
              f"({bisection['runs']} probe runs)")
        if args.dlrn_out and bisection.get("recording_b64"):
            import base64 as _base64

            blob = _base64.b64decode(bisection["recording_b64"])
            with open(args.dlrn_out, "wb") as handle:
                handle.write(blob)
            print(f"  wrote minimal repro to {args.dlrn_out} "
                  f"(load it with: python -m repro debug "
                  f"{args.dlrn_out})")
    if args.out:
        report.write_jsonl(args.out)
        print(f"wrote campaign report to {args.out}")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(tracer.metrics.as_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote telemetry counters to {args.metrics}")
    found = bool(report.failures)
    if args.expect_failure:
        # CI smoke semantics: the campaign must find a reproducible
        # failure AND shrink it to a debugger-verified minimal repro.
        verified = bool(bisection and bisection.get("verified"))
        return 0 if found and verified else 1
    return 0 if report.clean else 1


def _cmd_bench_baseline(args) -> int:
    from repro.runner.baseline import (
        collect_baseline,
        compare_baselines,
        load_baseline,
        render_baseline,
        write_baseline,
    )

    apps = validate_apps(args.apps) if args.apps else None
    app = apps[0] if apps else "fft"
    current = collect_baseline(app, scale=args.scale, seed=args.seed,
                               jobs=max(1, args.jobs),
                               figure_apps=apps)
    print(render_baseline(current))
    if args.baseline:
        write_baseline(args.baseline, current)
        print(f"wrote baseline snapshot to {args.baseline}")
    if args.check_baseline:
        reference = load_baseline(args.check_baseline)
        regressions = compare_baselines(current, reference,
                                        threshold=args.threshold)
        if regressions:
            print(f"\n{len(regressions)} regression(s) against "
                  f"{args.check_baseline}:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"within threshold {args.threshold:g} of "
              f"{args.check_baseline}")
    return 0


def _cmd_bench(args) -> int:
    if args.baseline or args.check_baseline:
        return _cmd_bench_baseline(args)
    if args.list:
        rows = [[figure.name, figure.description]
                for figure in FIGURES.values()]
        print(format_table(["figure", "sweep"], rows,
                           title="Registered evaluation figures"))
        return 0
    figures = resolve_figures(args.figures)
    apps = validate_apps(args.apps) if args.apps else DEFAULT_APPS
    specs = specs_for(figures, apps=apps, scale=args.scale,
                      seed=args.seed)
    runner = _make_runner(args, verbose=not args.quiet)
    outcomes = runner.run(specs)
    artifacts = {outcome.spec.content_hash(): outcome.artifact
                 for outcome in outcomes if outcome.ok}
    for figure in figures:
        print()
        print(figure.render(artifacts, apps, args.scale, args.seed))
    print()
    print(f"runner: {runner.metrics.summary()}")
    failures = [outcome for outcome in outcomes if not outcome.ok]
    for outcome in failures:
        print(f"\n{outcome.failure.summary()}", file=sys.stderr)
    return 0 if not failures else 1


def _cmd_debug(args) -> int:
    from repro.debugger import (
        DebuggerShell,
        ReplayController,
        load_debug_target,
    )

    recording, start_checkpoint = load_debug_target(
        args.artifact, segment=args.segment)
    controller = ReplayController(
        recording,
        checkpoint_every=args.checkpoint_every,
        verify=not args.no_verify,
        start_checkpoint=start_checkpoint,
    )
    print(f"loaded {recording.program.name}: "
          f"{len(recording.fingerprints)} commits, mode "
          f"{recording.mode_config.mode.name}")
    if args.script:
        with open(args.script, encoding="utf-8") as handle:
            shell = DebuggerShell(controller,
                                  session_log=args.session_log,
                                  stdin=handle)
            shell.cmdloop()
    else:
        shell = DebuggerShell(controller,
                              session_log=args.session_log)
        shell.cmdloop()
    return 0


def _cmd_chaos(args) -> int:
    label = _mode_from_spelling(args.mode)
    job_fn = execute_chaos_spec
    if args.worker_faults:
        # Wrap the job function so pool workers themselves crash and
        # dawdle -- exercising the retry/backoff hardening on top of
        # the data-corruption faults.
        job_fn = FaultyJobFn(
            job_fn=execute_chaos_spec,
            seed=args.plan_seed,
            state_dir=tempfile.mkdtemp(prefix="repro-chaos-"),
            crash_rate=0.2,
            slow_rate=0.3,
            slow_seconds=0.02,
        )
    runner = Runner(
        jobs=max(1, args.jobs),
        cache=False,
        timeout=args.timeout,
        retry=RetryPolicy(max_attempts=3, backoff_base=0.05,
                          backoff_max=0.5),
        reporter=ConsoleReporter(verbose=args.jobs > 1),
        job_fn=job_fn,
    )
    report = run_campaign(
        args.workload, _MODES[label],
        scale=args.scale, seed=args.seed,
        plan_seed=args.plan_seed, fault_count=args.faults,
        checkpoint_every=args.checkpoint_every, runner=runner)
    for result in report.results:
        salvage = result.get("salvage")
        extra = ""
        if salvage:
            extra = (f"  coverage {salvage['coverage']:.0%} "
                     f"({salvage['verified_commits']}/"
                     f"{salvage['total_commits']} commits)")
        detected = result.get("detected_by") or ""
        print(f"  {result['fault_label']:<28} "
              f"{result['outcome']:<18} {detected}{extra}")
    for failure in report.failures:
        print(f"  JOB FAILED: {failure}")
    print(report.summary())
    if args.out:
        report.write_jsonl(args.out)
        print(f"wrote campaign report to {args.out}")
    return 0 if report.invariant_ok else 1


def _cmd_serve(args) -> int:
    import asyncio

    from repro.guard.limits import Budgets
    from repro.serve import ReproService
    from repro.serve.http import run_server
    from repro.telemetry.metrics import MetricsRegistry

    tracer = EventTracer() if args.trace_out else None
    cache = (ResultCache(args.cache_dir) if args.cache_dir
             else ResultCache())
    service = ReproService(
        args.data_dir,
        cache=cache,
        executor=args.executor,
        jobs=max(1, args.jobs),
        capacity=args.capacity,
        tenant_quota=args.tenant_quota,
        budgets=Budgets(deadline_seconds=args.deadline),
        metrics=MetricsRegistry(),
        tracer=tracer,
        auth_token=args.auth_token,
        lease_ttl=args.lease_ttl,
        max_lease_expiries=args.max_lease_expiries,
        degraded_after=args.degraded_after,
        segment_bytes=args.segment_bytes,
        compact_after=args.compact_after,
        retain_terminal=args.retain_terminal,
    )
    if service.queue.recovered_jobs:
        print(f"recovered {service.queue.recovered_jobs} job(s) from "
              f"the journal ({service.queue.requeued_jobs} requeued, "
              f"{service.queue.truncated_bytes} torn byte(s) "
              f"truncated)")

    def ready(server) -> None:
        print(f"serving on http://{server.host}:{server.port}  "
              f"(queue {args.data_dir}, cache {service.cache.root}, "
              f"{service.backend.name} x{service.jobs})", flush=True)
        if args.ready_file:
            # host/port handshake for tests and scripts using --port 0
            with open(args.ready_file, "w", encoding="utf-8") as fh:
                fh.write(f"{server.host} {server.port}\n")

    try:
        asyncio.run(run_server(service, args.host, args.port, ready))
    except KeyboardInterrupt:
        pass
    finally:
        if tracer is not None:
            document = chrome_trace(tracer.events,
                                    process_name="repro serve")
            with open(args.trace_out, "w", encoding="utf-8") as fh:
                json.dump(document, fh, separators=(",", ":"))
                fh.write("\n")
            print(f"wrote serve trace to {args.trace_out}")
    return 0


def _parse_job_params(pairs) -> dict:
    """``--param key=value`` pairs; values parse as JSON when they
    can (numbers, booleans) and stay strings otherwise."""
    params: dict = {}
    for item in pairs or []:
        key, sep, value = item.partition("=")
        if not sep:
            raise ReproError(
                f"--param needs key=value, got {item!r}")
        try:
            params[key] = json.loads(value)
        except ValueError:
            params[key] = value
    return params


def _serve_client(args):
    from repro.serve.client import ServeClient

    return ServeClient(args.host, args.port,
                       token=getattr(args, "token", None))


def _cmd_worker(args) -> int:
    from repro.serve.worker import run_worker

    run_worker(
        args.host, args.port,
        worker_id=args.worker_id,
        token=args.token,
        cache_root=args.cache_dir,
        lease_ttl=args.lease_ttl,
        poll_interval=args.poll,
        max_jobs=args.max_jobs,
        idle_exit=args.idle_exit,
    )
    return 0


def _cmd_submit(args) -> int:
    from repro.errors import ServeError
    from repro.serve.model import TERMINAL_STATES

    client = _serve_client(args)
    params = _parse_job_params(args.param)
    try:
        job = client.submit(args.kind, params, tenant=args.tenant)
    except ServeError as error:
        if error.status == 429:
            print(f"shed: {error} (retry after "
                  f"{error.retry_after:g}s)", file=sys.stderr)
            return 3
        raise
    source = " (from cache)" if job.get("from_cache") else ""
    print(f"accepted {job['id']}: {job['kind']} -> "
          f"{job['state']}{source}")
    if job["state"] not in TERMINAL_STATES and args.follow:
        for _event_id, data in client.stream(job["id"]):
            snapshot = data["job"]
            print(f"  {snapshot['state']}"
                  + (f": {snapshot['error']}"
                     if snapshot.get("error") else ""))
        job = client.job(job["id"])
    elif job["state"] not in TERMINAL_STATES and args.wait:
        job = client.wait(job["id"], timeout=args.wait)
    if job["state"] == "done":
        print(f"artifact {job['artifact_hash']}")
        return 0
    if job["state"] == "failed":
        print(f"failed: {job['error']}", file=sys.stderr)
        return 1
    return 0


def _cmd_jobs(args) -> int:
    client = _serve_client(args)
    if args.follow:
        print("following job transitions (ctrl-c to stop)...")
        try:
            for event_id, data in client.stream(after=args.after):
                job = data["job"]
                print(f"  [{event_id}] {job['id']} "
                      f"{job['kind']:<12} {job['state']}"
                      + (f": {job['error']}" if job.get("error")
                         else ""))
        except KeyboardInterrupt:
            pass
        return 0
    jobs = client.jobs(tenant=args.tenant, state=args.state)
    if not jobs:
        print("no jobs")
        return 0
    rows = []
    for job in jobs:
        result = (job.get("artifact_hash") or "")[:12] \
            or (job.get("error") or "")[:32]
        rows.append([job["id"], job["kind"], job["state"],
                     job["tenant"],
                     "yes" if job.get("from_cache") else "",
                     result])
    print(format_table(
        ["job", "kind", "state", "tenant", "cached", "result"],
        rows, title=f"{len(jobs)} job(s)"))
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache(args.dir) if args.dir else ResultCache()
    action = args.cache_command
    if action == "stats":
        print(json.dumps(cache.stats(), indent=2, sort_keys=True))
        return 0
    if action == "gc":
        max_age = (args.max_age_days * 86400.0
                   if args.max_age_days is not None else None)
        if args.max_bytes is None and max_age is None:
            raise ReproError(
                "cache gc needs --max-bytes and/or --max-age-days")
        report = cache.gc(max_bytes=args.max_bytes,
                          max_age_seconds=max_age,
                          dry_run=args.dry_run)
        print(report.summary())
        if args.verbose:
            for spec_hash in report.evicted_hashes:
                print(f"  {spec_hash}")
        return 0
    if action in ("pin", "unpin"):
        for spec_hash in args.hashes:
            if action == "pin":
                cache.pin(spec_hash)
            else:
                cache.unpin(spec_hash)
        print(f"{action}ned {len(args.hashes)} artifact(s)")
        return 0
    raise ReproError(f"unknown cache action {action!r}")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeLorean chunk-based deterministic record/replay",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    workloads = (sorted(SPLASH2_APPS) + sorted(COMMERCIAL_APPS)
                 + sorted(STRESS_APPS))

    def add_workload_options(p):
        p.add_argument("workload", choices=workloads)
        p.add_argument("--scale", type=float, default=0.5,
                       help="workload scale factor (default 0.5)")
        p.add_argument("--seed", type=int, default=1)

    record = sub.add_parser("record", help="record an execution")
    add_workload_options(record)
    record.add_argument("--mode", choices=sorted(_MODES),
                        default="order-only")
    record.add_argument("--chunk-size", type=int, default=None)
    record.add_argument("--stratify", action="store_true",
                        help="also stratify the PI log (Section 4.3)")
    record.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="N",
                        help="take an interval checkpoint every N "
                             "commits")
    record.add_argument("--supervised", action="store_true",
                        help="run under repro.guard: watchdog stall "
                             "classification, budgets, degradation")
    record.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget (implies --supervised)")
    record.add_argument("--max-log-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="per-processor log budget; on overflow "
                             "the session degrades to a safer mode "
                             "(implies --supervised)")
    record.add_argument("--journal", metavar="PATH", default=None,
                        help="write-ahead recording journal: flushed "
                             "prefixes survive a crash mid-record "
                             "(implies --supervised)")
    record.add_argument("--flush-every", type=int, default=25,
                        metavar="COMMITS",
                        help="journal flush granularity (default 25)")
    record.add_argument("--no-degrade", action="store_true",
                        help="fail on budget exhaustion instead of "
                             "degrading to a safer mode")
    record.add_argument("--verify", action="store_true",
                        help="replay-verify each supervised segment")
    record.add_argument("-o", "--output", help="write the recording "
                                               "to this file")
    record.set_defaults(func=_cmd_record)

    replay = sub.add_parser("replay",
                            help="deterministically replay a recording")
    replay.add_argument("recording")
    replay.add_argument("--perturb-seed", type=int, default=None,
                        help="inject the paper's replay-timing noise")
    replay.add_argument("--strata", action="store_true",
                        help="replay from the stratified PI log")
    replay.add_argument("--from-commit", type=int, default=None,
                        metavar="N",
                        help="interval replay from the newest "
                             "checkpoint at or before commit N")
    replay.set_defaults(func=_cmd_replay)

    trace = sub.add_parser(
        "trace",
        help="record (and optionally replay) a workload with the "
             "event tracer on and export a Perfetto timeline")
    trace.add_argument("--app", dest="workload", required=True,
                       choices=workloads, help="workload to trace")
    trace.add_argument("--mode", default="order-only",
                       help="execution mode (dashes optional: "
                            "orderonly == order-only)")
    trace.add_argument("--scale", type=float, default=0.5,
                       help="workload scale factor (default 0.5)")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--chunk-size", type=int, default=None)
    trace.add_argument("--phase", choices=["record", "replay", "both"],
                       default="record",
                       help="which phase's timeline to export; replay "
                            "and both also verify determinism and "
                            "print forensics on divergence")
    trace.add_argument("--out", metavar="TRACE.json",
                       help="write the Chrome-trace/Perfetto JSON "
                            "here")
    trace.add_argument("--events", metavar="EVENTS.jsonl",
                       help="also write the raw event stream as "
                            "JSONL")
    trace.add_argument("--metrics", metavar="METRICS.json",
                       help="also write the flat metrics dump")
    trace.set_defaults(func=_cmd_trace)

    inspect = sub.add_parser("inspect", help="describe a recording")
    inspect.add_argument("recording")
    inspect.add_argument("--timeline", action="store_true")
    inspect.add_argument("--interleaving", action="store_true")
    inspect.add_argument("--limit", type=int, default=40)
    inspect.set_defaults(func=_cmd_inspect)

    def add_runner_options(p, timeout: bool = False):
        p.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes for the sweep "
                            "(default 1 = serial)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")
        p.add_argument("--report", default=None, metavar="REPORTER",
                       help="progress sink: console (default), null, "
                            "or jsonl:PATH (one JSON object per "
                            "sweep event)")
        if timeout:
            p.add_argument("--timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="per-job wall-clock budget (failed "
                                "jobs are retried, then reported)")

    modes = sub.add_parser(
        "modes", help="compare the three execution modes on a workload")
    add_workload_options(modes)
    add_runner_options(modes)
    modes.set_defaults(func=_cmd_modes)

    bench = sub.add_parser(
        "bench",
        help="run evaluation-figure sweeps through the parallel "
             "runner (cached under .repro-cache/)")
    bench.add_argument("figures", nargs="*", metavar="FIGURE",
                       help="figures to run (default: all; see "
                            "--list)")
    bench.add_argument("--list", action="store_true",
                       help="list registered figures and exit")
    bench.add_argument("--apps", nargs="+", metavar="APP",
                       help="restrict the sweep to these workloads")
    bench.add_argument("--scale", type=float,
                       default=float(os.environ.get(
                           "REPRO_BENCH_SCALE", "1.0")),
                       help="workload scale factor (default: "
                            "$REPRO_BENCH_SCALE or 1.0, the harness "
                            "default -- matching hashes warm the "
                            "pytest bench cache)")
    bench.add_argument("--seed", type=int,
                       default=int(os.environ.get(
                           "REPRO_BENCH_SEED", "11")),
                       help="workload seed (default: "
                            "$REPRO_BENCH_SEED or 11)")
    bench.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")
    bench.add_argument("--baseline", metavar="BENCH.json",
                       default=None,
                       help="measure a machine-readable performance "
                            "snapshot (record/replay events/sec per "
                            "mode, fig10/fig11 wall time) and write "
                            "it here instead of rendering figures")
    bench.add_argument("--check-baseline", metavar="BENCH.json",
                       default=None,
                       help="measure a fresh snapshot and fail if it "
                            "regresses past --threshold against this "
                            "reference")
    bench.add_argument("--threshold", type=float, default=0.1,
                       help="minimum acceptable current/reference "
                            "throughput ratio (default 0.1; wall "
                            "times may grow by at most its "
                            "reciprocal)")
    add_runner_options(bench, timeout=True)
    bench.set_defaults(func=_cmd_bench)

    explore = sub.add_parser(
        "explore",
        help="hunt schedule-dependent failures: perturb the commit-"
             "grant order (DPOR + PCT) on the deterministic "
             "substrate, then bisect any failure to a minimal "
             "debugger-loadable repro")
    explore.add_argument(
        "workload", choices=sorted(BUG_ZOO) + workloads,
        help="a bug-zoo specimen or any standard workload")
    explore.add_argument("--mode", default="order-only",
                         help="execution mode (separator-"
                              "insensitive); predefined-order modes "
                              "have a single schedule")
    explore.add_argument("--budget", type=int, default=64,
                         help="max schedules to explore (default 64)")
    explore.add_argument("--campaign-seed", type=int, default=0,
                         help="seed of the PCT trial stream (same "
                              "seed => byte-identical campaign)")
    explore.add_argument("--change-points", type=int, default=2,
                         help="PCT priority change points per trial "
                              "(default 2)")
    explore.add_argument("--threads", type=int, default=8,
                         help="simulated processors (default 8)")
    explore.add_argument("--exhaustive", action="store_true",
                         help="run the whole budget instead of "
                              "stopping at the first failure")
    explore.add_argument("--no-bisect", action="store_true",
                         help="skip shrinking the failing schedule")
    explore.add_argument("--expect-failure", action="store_true",
                         help="exit 0 only if a verified reproducible "
                              "failure was found (CI smoke); default "
                              "exit 0 = no failures found")
    explore.add_argument("--out", metavar="REPORT.jsonl",
                         help="write the JSONL campaign report here")
    explore.add_argument("--dlrn-out", metavar="REPRO.dlrn",
                         help="write the minimal repro recording "
                              "here (repro debug loads it)")
    explore.add_argument("--metrics", metavar="METRICS.json",
                         help="write the telemetry counters here")
    add_runner_options(explore, timeout=True)
    explore.set_defaults(func=_cmd_explore)

    races = sub.add_parser(
        "races", help="report cross-writer contention in a recording")
    races.add_argument("recording")
    races.add_argument("--top", type=int, default=10,
                       help="contended lines to show (default 10)")
    races.add_argument("--no-dma", action="store_true",
                       help="ignore DMA writes (processor-processor "
                            "contention only)")
    races.add_argument("--replay", action="store_true",
                       help="interval-replay the window around the "
                            "tightest cross-writer pair")
    races.set_defaults(func=_cmd_races)

    diff = sub.add_parser(
        "diff", help="find where two recordings of the same program "
                     "diverge")
    diff.add_argument("left")
    diff.add_argument("right")
    diff.set_defaults(func=_cmd_diff)

    debug = sub.add_parser(
        "debug",
        help="time-travel debug a recording (interactive REPL over "
             "deterministic replay)")
    debug.add_argument("artifact",
                       help="a .dlrn recording, a runner record "
                            "artifact (JSON), or a stitched segmented "
                            "recording")
    debug.add_argument("--segment", type=int, default=None,
                       metavar="N",
                       help="for stitched recordings: debug segment N "
                            "(default 0)")
    debug.add_argument("--script", metavar="FILE",
                       help="run debugger commands from FILE instead "
                            "of interactively")
    debug.add_argument("--session-log", metavar="JSONL",
                       help="append a JSONL record of the session "
                            "(commands, stops, printed state)")
    debug.add_argument("--checkpoint-every", type=int, default=64,
                       metavar="N",
                       help="debug-time restore points every N commits"
                            " (default 64); reverse steps re-execute "
                            "at most N-1 commits")
    debug.add_argument("--no-verify", action="store_true",
                       help="skip per-commit fingerprint verification "
                            "against the recording")
    debug.set_defaults(func=_cmd_debug)

    chaos = sub.add_parser(
        "chaos",
        help="record → inject seeded faults → replay/salvage, "
             "asserting detect-or-recover")
    add_workload_options(chaos)
    chaos.add_argument("--mode", default="order-only",
                       help="execution mode (separator-insensitive)")
    chaos.add_argument("--faults", type=int, default=12,
                       help="number of faults to draw from the plan")
    chaos.add_argument("--plan-seed", type=int, default=7,
                       help="fault-plan seed (same seed ⇒ same plan)")
    chaos.add_argument("--checkpoint-every", type=int, default=32,
                       metavar="N",
                       help="interval-checkpoint cadence of the "
                            "baseline recording (salvage resync "
                            "points)")
    chaos.add_argument("--jobs", type=int, default=1,
                       help="parallel campaign workers")
    chaos.add_argument("--timeout", type=float, default=None,
                       help="per-fault wall-clock budget (seconds)")
    chaos.add_argument("--worker-faults", action="store_true",
                       help="also inject worker crashes/slowdowns "
                            "into the pool")
    chaos.add_argument("--out", help="write the JSONL campaign report "
                                     "to this file")
    chaos.set_defaults(func=_cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="run record/replay as a service: durable job queue, "
             "HTTP submission, SSE streaming, artifact fetch")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="TCP port (0 = ephemeral; see "
                            "--ready-file)")
    serve.add_argument("--data-dir", default=".repro-serve",
                       metavar="DIR",
                       help="queue journal directory; accepted jobs "
                            "survive any crash (default .repro-serve)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="artifact cache root (default: the "
                            "runner's .repro-cache)")
    serve.add_argument("-j", "--jobs", type=int, default=1,
                       help="concurrent job workers (default 1)")
    serve.add_argument("--executor",
                       choices=["inline", "process", "remote"],
                       default=None,
                       help="execution backend (default: inline when "
                            "--jobs 1, else a process pool; 'remote' "
                            "serves a repro worker fleet and falls "
                            "back to a local pool while no worker "
                            "heartbeats)")
    serve.add_argument("--capacity", type=int, default=64,
                       help="max jobs in flight before submissions "
                            "shed with 429 (default 64)")
    serve.add_argument("--tenant-quota", type=int, default=32,
                       help="max in-flight jobs per tenant "
                            "(default 32)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock budget (guard "
                            "budget wiring; unset = unlimited)")
    serve.add_argument("--auth-token", metavar="TOKEN",
                       default=os.environ.get("REPRO_AUTH_TOKEN"),
                       help="shared-secret bearer token required on "
                            "submissions and all fleet calls "
                            "(default $REPRO_AUTH_TOKEN; unset = "
                            "open)")
    serve.add_argument("--lease-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="worker lease TTL; a claimed job whose "
                            "worker stops heartbeating this long is "
                            "requeued (default 30)")
    serve.add_argument("--max-lease-expiries", type=int, default=None,
                       metavar="N",
                       help="lease expiries before a job is declared "
                            "poison and failed (default 3)")
    serve.add_argument("--degraded-after", type=float, default=None,
                       metavar="SECONDS",
                       help="with --executor remote: no worker "
                            "heartbeat for this long degrades to the "
                            "local fallback pool (default 15)")
    serve.add_argument("--segment-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="rotate the queue journal at this size "
                            "(default 4 MiB)")
    serve.add_argument("--compact-after", type=int, default=None,
                       metavar="N",
                       help="compact the journal once this many "
                            "sealed segments accumulate (default 4)")
    serve.add_argument("--retain-terminal", type=int, default=None,
                       metavar="N",
                       help="compaction keeps at most this many "
                            "done/failed jobs (default: all)")
    serve.add_argument("--ready-file", metavar="PATH", default=None,
                       help="write 'host port' here once listening "
                            "(handshake for --port 0)")
    serve.add_argument("--trace-out", metavar="TRACE.json",
                       default=None,
                       help="write a Perfetto timeline of the serve "
                            "track on shutdown")
    serve.set_defaults(func=_cmd_serve)

    def add_client_options(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8321)
        p.add_argument("--token", metavar="TOKEN",
                       default=os.environ.get("REPRO_AUTH_TOKEN"),
                       help="bearer token for servers started with "
                            "--auth-token (default $REPRO_AUTH_TOKEN)")

    worker = sub.add_parser(
        "worker",
        help="join a repro serve fleet: claim jobs under a lease, "
             "heartbeat while executing, upload verified artifacts")
    worker.add_argument("--worker-id", default=None, metavar="ID",
                        help="stable worker name (default "
                             "hostname-pid)")
    worker.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="local artifact cache for dependency "
                             "reuse (default: the runner's "
                             ".repro-cache)")
    worker.add_argument("--lease-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="ask for this lease TTL when claiming "
                             "(default: the server's)")
    worker.add_argument("--poll", type=float, default=0.5,
                        metavar="SECONDS",
                        help="idle delay between claim attempts "
                             "(default 0.5)")
    worker.add_argument("--max-jobs", type=int, default=None,
                        metavar="N",
                        help="exit after completing N jobs (tests/CI)")
    worker.add_argument("--idle-exit", type=float, default=None,
                        metavar="SECONDS",
                        help="exit once the queue stays empty this "
                             "long (tests/CI)")
    add_client_options(worker)
    worker.set_defaults(func=_cmd_worker)

    submit = sub.add_parser(
        "submit", help="submit one job to a running repro serve")
    submit.add_argument(
        "kind",
        choices=["record", "replay", "consistency", "explore",
                 "chaos", "salvage", "bench"])
    submit.add_argument("--param", action="append", metavar="K=V",
                        help="job parameter (repeatable); values "
                             "parse as JSON when possible, e.g. "
                             "--param app=fft --param scale=0.3")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--follow", action="store_true",
                        help="stream the job's transitions (SSE) "
                             "until it finishes")
    submit.add_argument("--wait", type=float, default=None,
                        metavar="SECONDS",
                        help="poll until terminal, up to SECONDS")
    add_client_options(submit)
    submit.set_defaults(func=_cmd_submit)

    jobs_cmd = sub.add_parser(
        "jobs", help="list (or follow) jobs on a running repro serve")
    jobs_cmd.add_argument("--tenant", default=None)
    jobs_cmd.add_argument("--state", default=None,
                          choices=["queued", "running", "done",
                                   "failed"])
    jobs_cmd.add_argument("--follow", action="store_true",
                          help="stream every transition (SSE) instead "
                               "of listing")
    jobs_cmd.add_argument("--after", type=int, default=0,
                          help="with --follow: resume after this "
                               "event id")
    add_client_options(jobs_cmd)
    jobs_cmd.set_defaults(func=_cmd_jobs)

    cache_cmd = sub.add_parser(
        "cache", help="inspect and garbage-collect the result cache")
    cache_sub = cache_cmd.add_subparsers(dest="cache_command",
                                         required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="on-disk inventory and hit/miss counters")
    cache_gc = cache_sub.add_parser(
        "gc", help="evict least-recently-used artifacts")
    cache_gc.add_argument("--max-bytes", type=int, default=None,
                          help="evict oldest artifacts until at most "
                               "this many bytes remain")
    cache_gc.add_argument("--max-age-days", type=float, default=None,
                          help="evict artifacts idle longer than this")
    cache_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be evicted without "
                               "deleting")
    cache_gc.add_argument("--verbose", action="store_true",
                          help="list evicted artifact hashes")
    cache_pin = cache_sub.add_parser(
        "pin", help="exempt artifacts from gc eviction")
    cache_pin.add_argument("hashes", nargs="+", metavar="HASH")
    cache_unpin = cache_sub.add_parser(
        "unpin", help="remove artifacts' eviction exemption")
    cache_unpin.add_argument("hashes", nargs="+", metavar="HASH")
    for p in (cache_stats, cache_gc, cache_pin, cache_unpin):
        p.add_argument("--dir", default=None, metavar="DIR",
                       help="cache root (default .repro-cache or "
                            "$REPRO_CACHE_DIR)")
    cache_cmd.set_defaults(func=_cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
