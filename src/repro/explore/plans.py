"""Deterministic PCT-style schedule-plan streams.

PCT (probabilistic concurrency testing) finds a depth-``d`` bug with
probability >= 1/(n * k^(d-1)) by running the program under random
thread priorities with ``d-1`` priority change points.  Here the
"threads" are the arbiter's grant candidates and the "steps" its
commit grants, so one :class:`~repro.core.arbiter.SchedulePlan` -- a
priority seed plus change-point grant indices -- is exactly one PCT
trial, and the whole stream is a pure function of the campaign seed:
re-running a campaign explores byte-identical schedules, and every
trial is independently re-recordable from its plan alone.
"""

from __future__ import annotations

import random

from repro.core.arbiter import SchedulePlan

#: Multiplier folding the trial index into the campaign seed (a large
#: odd constant: consecutive trials get unrelated priority
#: permutations without colliding for any realistic campaign size).
_TRIAL_STRIDE = 1_000_003


def pct_plan(campaign_seed: int, trial: int, depth: int,
             change_points: int = 2) -> SchedulePlan:
    """The ``trial``-th PCT schedule plan of a campaign.

    ``depth`` is the schedule length estimate (the baseline run's
    grant count): change points are drawn uniformly from the grant
    indices ``1..depth-1``.  ``change_points`` is PCT's d-1 (bug depth
    minus one).  Everything derives from ``(campaign_seed, trial)``,
    nothing from global state.
    """
    trial_seed = campaign_seed * _TRIAL_STRIDE + trial
    rng = random.Random(trial_seed)
    population = range(1, max(2, depth))
    count = min(max(0, change_points), len(population))
    points = tuple(sorted(rng.sample(population, count)))
    return SchedulePlan(seed=trial_seed, change_points=points)


def pct_plans(campaign_seed: int, count: int, depth: int,
              change_points: int = 2) -> list[SchedulePlan]:
    """The first ``count`` trials of a campaign's PCT stream."""
    return [pct_plan(campaign_seed, trial, depth, change_points)
            for trial in range(count)]
