"""Campaign reports: per-schedule results and JSONL round-trip.

An exploration campaign is a stream of schedule outcomes plus one
summary; this module gives both a stable wire form.  The JSONL layout
follows :mod:`repro.faults.campaign`: one JSON object per explored
schedule, then a single ``{"kind": "explore-summary", ...}`` line, so
reports stream cleanly, concatenate across campaigns, and survive a
crash mid-campaign with every completed schedule intact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: The closed outcome vocabulary of one explored schedule.
#:
#: * ``pass`` -- the run completed and the workload invariant held.
#: * ``failure`` -- the run completed, the invariant broke, and the
#:   failing schedule replayed deterministically (a real, reproducible
#:   schedule-dependent bug).
#: * ``divergence`` -- the invariant broke but the recording did not
#:   replay faithfully (a substrate bug, not a workload bug).
#: * ``stall`` -- the run never completed (deadlock / budget / stall,
#:   per the guard's classification).
EXPLORE_OUTCOMES = ("pass", "failure", "divergence", "stall")

#: Where each explored plan came from.
PLAN_SOURCES = ("baseline", "dpor", "races", "pct", "bisect")


@dataclass(frozen=True)
class ScheduleResult:
    """The classified outcome of one explored schedule."""

    plan: dict                  # SchedulePlan.as_dict() wire form
    source: str                 # one of PLAN_SOURCES
    outcome: str                # one of EXPLORE_OUTCOMES
    classification: str = ""    # guard verdict / invariant diagnosis
    detail: str = ""
    spec_hash: str = ""
    cached: bool = False
    wall_time: float = 0.0
    commits: int = 0

    def __post_init__(self) -> None:
        if self.outcome not in EXPLORE_OUTCOMES:
            raise ValueError(
                f"unknown explore outcome {self.outcome!r} (expected "
                f"one of {', '.join(EXPLORE_OUTCOMES)})")

    @property
    def ok(self) -> bool:
        return self.outcome == "pass"

    def as_dict(self) -> dict:
        return {
            "kind": "explore-schedule",
            "plan": self.plan,
            "source": self.source,
            "outcome": self.outcome,
            "classification": self.classification,
            "detail": self.detail,
            "spec_hash": self.spec_hash,
            "cached": self.cached,
            "wall_time": self.wall_time,
            "commits": self.commits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleResult":
        return cls(
            plan=dict(data["plan"]),
            source=data["source"],
            outcome=data["outcome"],
            classification=data.get("classification", ""),
            detail=data.get("detail", ""),
            spec_hash=data.get("spec_hash", ""),
            cached=bool(data.get("cached", False)),
            wall_time=float(data.get("wall_time", 0.0)),
            commits=int(data.get("commits", 0)),
        )


@dataclass
class ExploreReport:
    """Everything one exploration campaign found."""

    app: str
    mode: str
    campaign_seed: int
    budget: int
    results: list[ScheduleResult] = field(default_factory=list)
    bisection: dict | None = None   # MinimalRepro.as_dict() if bisected
    frontier_branches: int = 0      # DPOR branches generated
    frontier_deduplicated: int = 0

    def add(self, result: ScheduleResult) -> None:
        self.results.append(result)

    @property
    def count(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> list[ScheduleResult]:
        return [r for r in self.results if r.outcome == "failure"]

    @property
    def divergences(self) -> list[ScheduleResult]:
        return [r for r in self.results if r.outcome == "divergence"]

    @property
    def stalls(self) -> list[ScheduleResult]:
        return [r for r in self.results if r.outcome == "stall"]

    @property
    def clean(self) -> bool:
        """True when every explored schedule passed."""
        return all(r.ok for r in self.results)

    def outcome_counts(self) -> dict:
        counts = {outcome: 0 for outcome in EXPLORE_OUTCOMES}
        for result in self.results:
            counts[result.outcome] += 1
        return counts

    def as_dict(self) -> dict:
        return {
            "kind": "explore-summary",
            "app": self.app,
            "mode": self.mode,
            "campaign_seed": self.campaign_seed,
            "budget": self.budget,
            "schedules": self.count,
            "outcomes": self.outcome_counts(),
            "cached": sum(1 for r in self.results if r.cached),
            "frontier_branches": self.frontier_branches,
            "frontier_deduplicated": self.frontier_deduplicated,
            "clean": self.clean,
            "bisection": self.bisection,
        }

    def summary(self) -> str:
        counts = self.outcome_counts()
        parts = [f"{self.count} schedules"]
        parts.extend(f"{counts[o]} {o}" for o in EXPLORE_OUTCOMES
                     if counts[o])
        line = (f"explore {self.app}/{self.mode} "
                f"seed={self.campaign_seed}: " + ", ".join(parts))
        if self.bisection is not None:
            line += (f"; minimized to prefix of "
                     f"{self.bisection.get('prefix_length')} grants")
        return line

    def write_jsonl(self, path) -> Path:
        """One line per explored schedule, then the summary line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as stream:
            for result in self.results:
                stream.write(json.dumps(result.as_dict(),
                                        sort_keys=True) + "\n")
            stream.write(json.dumps(self.as_dict(), sort_keys=True)
                         + "\n")
        return path


def read_explore_report(path) -> ExploreReport:
    """Rebuild an :class:`ExploreReport` from its JSONL file."""
    results: list[ScheduleResult] = []
    summary: dict | None = None
    with Path(path).open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("kind") == "explore-summary":
                summary = data
            elif data.get("kind") == "explore-schedule":
                results.append(ScheduleResult.from_dict(data))
    if summary is None:
        raise ValueError(f"{path}: no explore-summary line "
                         f"(truncated campaign?)")
    report = ExploreReport(
        app=summary["app"],
        mode=summary["mode"],
        campaign_seed=int(summary["campaign_seed"]),
        budget=int(summary["budget"]),
        results=results,
        bisection=summary.get("bisection"),
        frontier_branches=int(summary.get("frontier_branches", 0)),
        frontier_deduplicated=int(
            summary.get("frontier_deduplicated", 0)),
    )
    return report
