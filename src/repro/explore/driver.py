"""The exploration driver: pooled schedule runs and the campaign loop.

Two layers:

* :func:`execute_explore_spec` is the *worker* -- the ``explore``
  entry in the runner's job table.  One call = one schedule: it
  re-records the workload under the spec's
  :class:`~repro.core.arbiter.SchedulePlan` (supervised, with the
  guard's deterministic event budget bounding the run -- no wall-clock
  in the worker, so artifacts stay byte-stable and cache-sound),
  captures the per-commit access sets for the DPOR frontier, checks
  the workload invariant, replay-verifies any violation, and packages
  everything as a standard runner artifact.

* :func:`run_exploration` is the *campaign*: baseline run first, then
  waves of schedules through a :class:`~repro.runner.pool.Runner` --
  DPOR frontier branches before PCT trials -- classifying outcomes,
  expanding the frontier from every completed schedule, and bisecting
  the first failure to a minimal debugger-verified repro.

Outcome vocabulary (see :data:`repro.explore.report.EXPLORE_OUTCOMES`):
``failure`` is reserved for violations that *replay
deterministically* -- a reproducible schedule-dependent bug.  A
violation whose recording diverges on replay is a ``divergence``
(substrate bug), and a run the guard had to kill is a ``stall``.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from dataclasses import replace as _replace

from repro.core.arbiter import SchedulePlan
from repro.core.modes import ExecutionMode, preferred_config
from repro.errors import ConfigurationError
from repro.explore.bisect import minimize_schedule
from repro.explore.frontier import Frontier
from repro.explore.plans import pct_plan
from repro.explore.report import ExploreReport, ScheduleResult

#: Fallback schedule-length estimate when the baseline produced no
#: grants (degenerate program); keeps PCT sampling well-defined.
_MIN_DEPTH = 2


def _invariant_for(spec):
    """The workload's final-memory invariant, if it declares one."""
    if spec.app.startswith("zoo:"):
        from repro.workloads.bugzoo import zoo_specimen

        return zoo_specimen(spec.app[len("zoo:"):]).check
    return None


def execute_explore_spec(spec, cache=None) -> dict:
    """Run one schedule-perturbed supervised record and classify it.

    The runner's ``explore`` job function.  Returns a standard
    artifact whose ``metrics`` carry the classified ``outcome``, the
    observed ``grant_order`` and per-commit ``accesses`` (the DPOR
    frontier's food), and whose payload is the ``.dlrn`` recording
    whenever the run completed.
    """
    from repro.guard.supervisor import supervise_record
    from repro.machine.system import replay_execution
    from repro.runner.jobs import _base_artifact, _program_for

    if spec.kind != "explore":
        raise ConfigurationError(
            f"execute_explore_spec got a {spec.kind!r} spec")
    program = _program_for(spec)
    plan = spec.schedule_plan()
    mode = spec.execution_mode()
    mode_config = preferred_config(mode)
    if spec.chunk_size:
        mode_config = _replace(mode_config,
                               standard_chunk_size=spec.chunk_size)

    accesses: list[tuple] = []

    def on_commit(chunk, count) -> None:
        accesses.append((chunk.processor,
                         tuple(sorted(chunk.read_lines)),
                         tuple(sorted(chunk.write_lines))))

    report = supervise_record(
        program,
        mode=mode,
        machine_config=spec.machine_config(),
        mode_config=mode_config,
        degrade=False,
        schedule=None if plan.is_natural else plan,
        commit_hook=on_commit,
    )

    invariant = _invariant_for(spec)
    invariant_ok, invariant_detail = True, ""
    replay_matches = None
    recording = None
    if report.ok:
        recording = report.recording
        if invariant is not None:
            verdict = invariant(recording.final_memory)
            invariant_ok = verdict.ok
            invariant_detail = verdict.detail
        if invariant_ok:
            outcome, classification = "pass", "invariant-held"
        else:
            # A violation only counts as a bug if the schedule that
            # produced it replays deterministically.
            try:
                result = replay_execution(recording)
                replay_matches = bool(result.determinism.matches)
                if not replay_matches:
                    invariant_detail += (
                        "; " + result.determinism.summary())
            except Exception as error:  # noqa: BLE001 -- classified
                replay_matches = False
                invariant_detail += (
                    f"; replay raised "
                    f"{type(error).__name__}: {error}")
            if replay_matches:
                outcome, classification = ("failure",
                                           "invariant-violated")
            else:
                outcome, classification = ("divergence",
                                           "replay-diverged")
    else:
        outcome = "stall"
        classification = report.classification or report.outcome

    artifact = _base_artifact(spec)
    artifact["metrics"] = {
        "outcome": outcome,
        "classification": classification,
        "supervision": report.outcome,
        "invariant_ok": invariant_ok,
        "invariant_detail": invariant_detail,
        "replay_matches": replay_matches,
        "grant_order": [proc for proc, _, _ in accesses],
        "accesses": [[proc, list(reads), list(writes)]
                     for proc, reads, writes in accesses],
        "commits": report.global_commits,
        "events": report.events,
        "cycles": report.cycles,
    }
    if recording is not None:
        from repro.core.serialization import save_recording

        artifact["payload_codec"] = "dlrn"
        artifact["payload"] = base64.b64encode(
            save_recording(recording)).decode("ascii")
    else:
        artifact["payload_codec"] = "none"
        artifact["payload"] = ""
    return artifact


@dataclass(frozen=True)
class ScheduleOutcome:
    """One explored schedule, parsed back out of its job outcome."""

    spec: object                # the RunSpec that ran
    plan: SchedulePlan
    source: str                 # baseline | dpor | races | pct
    outcome: str                # pass | failure | divergence | stall
    classification: str
    detail: str
    grant_order: tuple
    accesses: tuple
    commits: int
    cached: bool
    wall_time: float
    artifact: dict | None

    @property
    def failed(self) -> bool:
        return self.outcome == "failure"

    @property
    def completed(self) -> bool:
        """The run finished (its grant order is frontier food)."""
        return self.outcome in ("pass", "failure")

    def result(self) -> ScheduleResult:
        return ScheduleResult(
            plan=self.plan.as_dict(),
            source=self.source,
            outcome=self.outcome,
            classification=self.classification,
            detail=self.detail,
            spec_hash=self.spec.content_hash(),
            cached=self.cached,
            wall_time=self.wall_time,
            commits=self.commits,
        )

    @classmethod
    def from_job(cls, spec, plan: SchedulePlan, source: str,
                 job) -> "ScheduleOutcome":
        if not job.ok:
            failure = job.failure
            return cls(
                spec=spec, plan=plan, source=source,
                outcome="stall",
                classification=(f"job-{failure.error_type}"
                                if failure else "job-error"),
                detail=(failure.last.message
                        if failure and failure.attempts else ""),
                grant_order=(), accesses=(), commits=0,
                cached=False, wall_time=job.wall_time,
                artifact=None)
        metrics = job.artifact["metrics"]
        return cls(
            spec=spec, plan=plan, source=source,
            outcome=metrics["outcome"],
            classification=metrics["classification"],
            detail=metrics.get("invariant_detail", ""),
            grant_order=tuple(metrics["grant_order"]),
            accesses=tuple(
                (proc, tuple(reads), tuple(writes))
                for proc, reads, writes in metrics["accesses"]),
            commits=metrics["commits"],
            cached=job.from_cache,
            wall_time=job.wall_time,
            artifact=job.artifact)


def _natural_repro(failing: ScheduleOutcome) -> dict:
    """A degenerate 'minimal repro' for predefined-order modes: the
    natural token schedule itself fails, so the baseline recording is
    already the minimal (zero-grant-prescription) reproducer."""
    return {
        "kind": "minimal-repro",
        "plan": failing.plan.as_dict(),
        "prefix_length": 0,
        "full_length": 0,
        "runs": 0,
        "verified": True,   # worker replay-verified before 'failure'
        "detail": failing.detail,
        "divergence_commit": 0,
        "state_fingerprint": "",
        "recording_b64": failing.artifact["payload"],
    }


def run_exploration(app: str, mode, *, budget: int = 64,
                    campaign_seed: int = 0, change_points: int = 2,
                    stop_on_first: bool = True, bisect: bool = True,
                    chunk_size: int = 0, num_threads: int = 8,
                    runner=None, tracer=None) -> ExploreReport:
    """Hunt schedule-dependent failures in ``app`` under ``mode``.

    Runs the natural schedule first, then up to ``budget`` total
    schedules: DPOR frontier branches (racing-pair reversals mined
    from every completed run, plus the offline race analysis of the
    baseline recording) ahead of seeded PCT trials.  With
    ``stop_on_first`` the campaign stops at the first reproducible
    failure; with ``bisect`` that failure is shrunk to a minimal
    debugger-verified repro (``report.bisection``).

    ``runner`` defaults to an inline single-worker
    :class:`~repro.runner.pool.Runner` without caching; pass a cached
    parallel runner to fan campaigns out and reuse per-schedule
    outcomes across campaigns (explore specs are content-addressed).

    Predefined-order modes (PicoLog / Size-only) have exactly one
    schedule -- the round-robin token order -- so their campaign is
    the baseline run alone; the arbiter rejects plans there by design.
    """
    from repro.runner.pool import Runner
    from repro.runner.specs import RunSpec

    mode = mode if isinstance(mode, ExecutionMode) \
        else ExecutionMode(mode)
    if runner is None:
        runner = Runner(jobs=1, cache=False)
    report = ExploreReport(app=app, mode=mode.value,
                           campaign_seed=campaign_seed, budget=budget)

    def spec_for(plan: SchedulePlan):
        return RunSpec.explore(
            app, mode, schedule_seed=plan.seed, prefix=plan.prefix,
            change_points=plan.change_points, chunk_size=chunk_size,
            num_threads=num_threads)

    def run_wave(tagged) -> list[ScheduleOutcome]:
        specs = [spec_for(plan) for plan, _ in tagged]
        jobs = runner.run(specs)
        return [ScheduleOutcome.from_job(spec, plan, source, job)
                for (plan, source), spec, job in
                zip(tagged, specs, jobs)]

    natural = SchedulePlan()
    [baseline] = run_wave([(natural, "baseline")])
    report.add(baseline.result())
    failing = baseline if baseline.failed else None

    if mode.predefined_order:
        # One schedule total; see the docstring.
        if failing is not None and failing.artifact is not None:
            report.bisection = _natural_repro(failing)
        _count_outcomes(report, tracer)
        return report

    frontier = Frontier()
    frontier.mark_seen(natural)
    sources: dict[tuple, str] = {}

    def plan_key(plan: SchedulePlan) -> tuple:
        return (plan.seed, plan.prefix, plan.change_points)

    if baseline.completed:
        frontier.expand(baseline.grant_order, baseline.accesses)
    if (baseline.artifact is not None
            and baseline.artifact.get("payload_codec") == "dlrn"):
        # Offline race analysis of the baseline recording seeds extra
        # branch points (the analysis layer's ContendedLines).
        from repro.analysis.races import exploration_targets
        from repro.runner.jobs import recording_from_artifact

        recording = recording_from_artifact(baseline.artifact)
        for target in exploration_targets(recording):
            plan = SchedulePlan(prefix=target.prefix)
            if frontier.offer(plan):
                sources[plan_key(plan)] = "races"

    depth = max(len(baseline.grant_order), _MIN_DEPTH)
    wave_size = max(int(getattr(runner, "jobs", 1)), 1)
    trial = 0
    explored = 1
    while explored < budget and not (stop_on_first and failing):
        tagged: list[tuple] = []
        while len(tagged) < min(wave_size, budget - explored):
            plan = frontier.pop()
            if plan is not None:
                source = sources.pop(plan_key(plan), "dpor")
            else:
                plan = pct_plan(campaign_seed, trial, depth,
                                change_points)
                trial += 1
                if not frontier.mark_seen(plan):
                    continue
                source = "pct"
            tagged.append((plan, source))
        for outcome in run_wave(tagged):
            explored += 1
            report.add(outcome.result())
            if outcome.completed:
                frontier.expand(outcome.grant_order,
                                outcome.accesses)
            if outcome.failed and failing is None:
                failing = outcome

    report.frontier_branches = frontier.branches_generated
    report.frontier_deduplicated = frontier.branches_deduplicated

    if (failing is not None and bisect and failing.grant_order
            and not failing.plan.is_natural):
        try:
            minimal = minimize_schedule(
                app, mode, failing.grant_order,
                chunk_size=chunk_size, num_threads=num_threads,
                cache=getattr(runner, "cache", None), tracer=tracer)
            report.bisection = minimal.as_dict(
                include_recording=True)
        except ValueError as error:
            report.bisection = {"kind": "minimal-repro",
                                "error": str(error)}
    elif failing is not None and failing.plan.is_natural \
            and failing.artifact is not None:
        report.bisection = _natural_repro(failing)

    _count_outcomes(report, tracer)
    return report


def _count_outcomes(report: ExploreReport, tracer) -> None:
    if tracer is None:
        return
    counts = report.outcome_counts()
    metrics = tracer.metrics
    metrics.counter("explore_schedules_run").inc(report.count)
    metrics.counter("explore_pass").inc(counts["pass"])
    metrics.counter("explore_failures").inc(counts["failure"])
    metrics.counter("explore_divergences").inc(counts["divergence"])
    metrics.counter("explore_stalls").inc(counts["stall"])
    metrics.counter("explore_cached").inc(
        sum(1 for r in report.results if r.cached))
    metrics.counter("explore_frontier_branches").inc(
        report.frontier_branches)
