"""Shrink a failing schedule to a minimal grant-order delta.

A failing explored schedule arrives as a full grant-order prescription
(every commit named).  Almost all of it is irrelevant: the bug needs
only the prefix up to the racing window.  :func:`minimize_schedule`
binary-searches the prescription length -- probe ``L`` re-records
under ``SchedulePlan(prefix=grants[:L])`` and checks the invariant --
converging on the adjacent pair where ``L-1`` grants pass and ``L``
fail.  That prefix is locally minimal by construction (shortening it
by one grant makes the bug vanish) and costs ~log2(n) re-records, each
cache-eligible because probes are ordinary explore specs.

The minimal schedule is then *verified through the debugger*: its
recording is replayed by a :class:`~repro.debugger.controller.\
ReplayController` with commit-fingerprint verification on, jumped to
the first grant that differs from the natural schedule (the earliest
observable divergence), fingerprinted there, and run to completion.
Only a recording that survives that -- bit-faithful replay of the
whole minimized failure -- is reported as a repro, and its ``.dlrn``
blob loads straight into ``repro debug``.
"""

from __future__ import annotations

import base64
import hashlib
from dataclasses import dataclass

from repro.core.serialization import load_recording


@dataclass(frozen=True)
class MinimalRepro:
    """A minimized, debugger-verified failing schedule."""

    plan: dict                  # minimal SchedulePlan wire form
    prefix_length: int          # grants prescribed by the minimal plan
    full_length: int            # grants in the original failing plan
    runs: int                   # probe re-records the search spent
    verified: bool              # debugger replayed it bit-faithfully
    detail: str                 # invariant diagnosis at the minimum
    divergence_commit: int      # first grant differing from natural
    state_fingerprint: str      # digest of state at the divergence
    recording_b64: str          # the minimal .dlrn container, base64

    @property
    def recording_blob(self) -> bytes:
        return base64.b64decode(self.recording_b64)

    def recording(self):
        """The minimal failing recording, ready for ``repro debug``."""
        return load_recording(self.recording_blob)

    def as_dict(self, include_recording: bool = False) -> dict:
        data = {
            "kind": "minimal-repro",
            "plan": self.plan,
            "prefix_length": self.prefix_length,
            "full_length": self.full_length,
            "runs": self.runs,
            "verified": self.verified,
            "detail": self.detail,
            "divergence_commit": self.divergence_commit,
            "state_fingerprint": self.state_fingerprint,
        }
        if include_recording:
            data["recording_b64"] = self.recording_b64
        return data


def _probe(app, mode, prefix, *, chunk_size, num_threads, cache):
    """Re-record under a prefix prescription; returns the explore
    artifact's metrics plus the artifact itself."""
    from repro.explore.driver import execute_explore_spec
    from repro.runner.specs import RunSpec

    spec = RunSpec.explore(app, mode, prefix=tuple(prefix),
                           chunk_size=chunk_size,
                           num_threads=num_threads)
    artifact = execute_explore_spec(spec, cache)
    return artifact


def _first_divergence(minimal_order, natural_order) -> int:
    """Index of the first grant where the minimized schedule departs
    from the natural one (the earliest observable difference)."""
    for index, (got, natural) in enumerate(
            zip(minimal_order, natural_order)):
        if got != natural:
            return index
    return min(len(minimal_order), len(natural_order))


def _verify_with_debugger(recording, divergence_commit: int):
    """Replay the minimal recording through the time-travel debugger:
    land on the divergence commit, fingerprint, run to the end with
    commit verification on.  Returns ``(verified, fingerprint_digest,
    message)``."""
    from repro.debugger.controller import ReplayController

    controller = ReplayController(recording, checkpoint_every=64,
                                  verify=True)
    target = min(divergence_commit, controller.total_commits)
    stop = controller.goto(target)
    if stop.reason == "divergence":
        return False, "", stop.message
    digest = hashlib.sha256(
        repr(controller.state_fingerprint()).encode()).hexdigest()
    stop = controller.cont()
    while stop.reason == "breakpoint":
        stop = controller.cont()
    if stop.reason != "end":
        return False, digest, (stop.message
                               or f"stopped on {stop.reason}")
    return True, digest, ""


def minimize_schedule(app: str, mode, grant_order, *,
                      chunk_size: int = 0, num_threads: int = 8,
                      cache=None, tracer=None) -> MinimalRepro:
    """Shrink a failing grant order to its minimal failing prefix.

    ``grant_order`` is the full per-commit processor sequence of a
    schedule known to violate the workload invariant (an explore
    artifact's ``metrics["grant_order"]``).  Preconditions: the natural
    schedule (empty prefix) passes and the full prescription fails --
    both are re-checked, and a violated precondition raises
    ``ValueError`` rather than reporting a bogus minimum.

    Probes that stall or diverge count as *not reproducing*: the
    search only ever tightens toward schedules that fail cleanly and
    replay deterministically.
    """
    grants = [int(g) for g in grant_order]
    runs = 0

    def failing(length: int):
        nonlocal runs
        runs += 1
        artifact = _probe(app, mode, grants[:length],
                          chunk_size=chunk_size,
                          num_threads=num_threads, cache=cache)
        metrics = artifact["metrics"]
        return metrics["outcome"] == "failure", artifact

    full_fails, full_artifact = failing(len(grants))
    if not full_fails:
        raise ValueError(
            "the full grant prescription does not reproduce the "
            f"failure (outcome "
            f"{full_artifact['metrics']['outcome']!r})")
    natural_fails, natural_artifact = failing(0)
    if natural_fails:
        raise ValueError(
            "the natural schedule already fails; nothing to minimize "
            "(not a schedule-dependent bug)")
    natural_order = list(natural_artifact["metrics"]["grant_order"])

    # Invariant: lo passes, hi fails.  Converges to the adjacent pair.
    lo, hi = 0, len(grants)
    hi_artifact = full_artifact
    while hi - lo > 1:
        mid = (lo + hi) // 2
        mid_fails, mid_artifact = failing(mid)
        if mid_fails:
            hi, hi_artifact = mid, mid_artifact
        else:
            lo = mid
    metrics = hi_artifact["metrics"]
    minimal_order = list(metrics["grant_order"])
    divergence = _first_divergence(minimal_order, natural_order)
    recording = load_recording(
        base64.b64decode(hi_artifact["payload"]))
    verified, digest, message = _verify_with_debugger(
        recording, divergence)
    if tracer is not None:
        tracer.metrics.counter("explore_bisect_probes").inc(runs)
    plan = {"seed": None, "prefix": grants[:hi], "change_points": []}
    return MinimalRepro(
        plan=plan,
        prefix_length=hi,
        full_length=len(grants),
        runs=runs,
        verified=verified,
        detail=(metrics.get("invariant_detail", "")
                + (f"; debugger: {message}" if message else "")),
        divergence_commit=divergence,
        state_fingerprint=digest,
        recording_b64=hi_artifact["payload"],
    )
