"""Schedule-space exploration and automated race hunting.

DeLorean's arbiter commit order *is* the thread schedule, and the
substrate makes every schedule deterministic and re-recordable.  This
subpackage turns that substrate into a schedule *enumerator*: it
perturbs the record-phase commit-grant order through
:class:`~repro.core.arbiter.SchedulePlan` plug-ins, classifies each
explored schedule's outcome, branches DPOR-style at racing commit
pairs instead of permuting blindly, and shrinks any failing schedule
to a minimal grant-order delta whose recording loads straight into
``repro debug``.

Layers:

* :mod:`repro.explore.plans` -- deterministic PCT-style plan streams.
* :mod:`repro.explore.frontier` -- the dependence-aware DPOR frontier.
* :mod:`repro.explore.driver` -- the campaign driver and the pooled
  per-schedule worker (:func:`~repro.explore.driver.execute_explore_spec`).
* :mod:`repro.explore.bisect` -- the failing-schedule minimizer.
* :mod:`repro.explore.report` -- JSONL campaign reports.
"""

from repro.explore.bisect import MinimalRepro, minimize_schedule
from repro.explore.driver import (
    ScheduleOutcome,
    execute_explore_spec,
    run_exploration,
)
from repro.explore.frontier import Frontier, RacingPair, racing_pairs
from repro.explore.plans import pct_plan, pct_plans
from repro.explore.report import (
    EXPLORE_OUTCOMES,
    ExploreReport,
    ScheduleResult,
    read_explore_report,
)

__all__ = [
    "EXPLORE_OUTCOMES",
    "ExploreReport",
    "Frontier",
    "MinimalRepro",
    "RacingPair",
    "ScheduleOutcome",
    "ScheduleResult",
    "execute_explore_spec",
    "minimize_schedule",
    "pct_plan",
    "pct_plans",
    "racing_pairs",
    "read_explore_report",
    "run_exploration",
]
