"""The dependence-aware exploration frontier (DPOR-style).

Blind permutation of commit grants wastes almost every run: two
chunks that touch disjoint lines commute, so reordering them yields
the same execution.  Dynamic partial-order reduction branches only
where it matters -- at *racing* commit pairs -- and this frontier is
the recorded-substrate version of that idea: given one explored
schedule's per-commit access sets (captured at each chunk's
linearization point), it finds cross-processor conflicting pairs with
the same Bloom-signature test the commit arbiter itself uses
(:mod:`repro.chunks.signature`), and for each pair emits the
grant-order prefix that replays the schedule up to the pair and then
reverses it.

Plans are deduplicated by their wire form, so re-discovering the same
branch from different schedules costs nothing, and the frontier never
re-offers a plan the campaign has already run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.chunks.signature import Signature, SignatureConfig
from repro.core.arbiter import SchedulePlan

#: Per-schedule cap on newly generated branches (a heavily racy run
#: can produce O(n^2) pairs; the closest ones matter most).
DEFAULT_BRANCH_LIMIT = 32


@dataclass(frozen=True)
class RacingPair:
    """Two cross-processor commits whose signatures conflict."""

    first_index: int
    second_index: int
    first_proc: int
    second_proc: int
    kind: str  # "w-w", "w-r" or "r-w" (first's access vs second's)


def _signature(lines, config: SignatureConfig) -> Signature:
    signature = Signature(config)
    for line in lines:
        signature.insert(line)
    return signature


def racing_pairs(accesses, config: SignatureConfig | None = None,
                 limit: int | None = None) -> list[RacingPair]:
    """Conflicting cross-processor commit pairs, nearest first.

    ``accesses`` is one schedule's commit log: a sequence of
    ``(processor, read_lines, write_lines)`` triples in global commit
    order.  The conflict test is the hardware one -- Bloom signature
    intersection -- so (like the real arbiter) it may flag a false
    pair from aliasing, which costs one redundant schedule and nothing
    else.  Pairs are sorted by commit distance: adjacent racing
    commits are the timing-sensitive ones.
    """
    config = config or SignatureConfig()
    signatures = [
        (proc,
         _signature(reads, config),
         _signature(writes, config))
        for proc, reads, writes in accesses
    ]
    pairs: list[RacingPair] = []
    for j, (proc_j, reads_j, writes_j) in enumerate(signatures):
        for i in range(j):
            proc_i, reads_i, writes_i = signatures[i]
            if proc_i == proc_j:
                continue
            if writes_i.intersects(writes_j):
                kind = "w-w"
            elif writes_i.intersects(reads_j):
                kind = "w-r"
            elif reads_i.intersects(writes_j):
                kind = "r-w"
            else:
                continue
            pairs.append(RacingPair(
                first_index=i, second_index=j,
                first_proc=proc_i, second_proc=proc_j, kind=kind))
    pairs.sort(key=lambda pair: (
        pair.second_index - pair.first_index,
        pair.first_index))
    if limit is not None:
        pairs = pairs[:max(0, limit)]
    return pairs


def branch_prefix(grant_order, pair: RacingPair) -> tuple[int, ...]:
    """The grant prescription that reverses one racing pair.

    Replay the observed grants up to (not including) the pair's first
    commit, then grant every commit the *second* processor made in the
    racing window before the first processor runs again.  The tail is
    left free (arrival order), so the execution can diverge naturally
    once the race has been flipped.
    """
    i, j = pair.first_index, pair.second_index
    return tuple(grant_order[:i]) + tuple(
        proc for proc in grant_order[i:j + 1]
        if proc == pair.second_proc)


class Frontier:
    """Deduplicated queue of schedule plans still worth running."""

    def __init__(self, config: SignatureConfig | None = None,
                 branch_limit: int = DEFAULT_BRANCH_LIMIT) -> None:
        self.config = config or SignatureConfig()
        self.branch_limit = branch_limit
        self._pending: deque[SchedulePlan] = deque()
        self._seen: set[tuple] = set()
        self.branches_generated = 0
        self.branches_deduplicated = 0

    def _key(self, plan: SchedulePlan) -> tuple:
        return (plan.seed, plan.prefix, plan.change_points)

    def __len__(self) -> int:
        return len(self._pending)

    def offer(self, plan: SchedulePlan) -> bool:
        """Queue a plan unless an identical one was ever offered."""
        key = self._key(plan)
        if key in self._seen:
            self.branches_deduplicated += 1
            return False
        self._seen.add(key)
        self._pending.append(plan)
        return True

    def mark_seen(self, plan: SchedulePlan) -> bool:
        """Record an externally-run plan (e.g. a PCT trial) so the
        frontier never re-emits it; returns False when the plan was
        already seen (the caller should skip it)."""
        key = self._key(plan)
        if key in self._seen:
            return False
        self._seen.add(key)
        return True

    def pop(self) -> SchedulePlan | None:
        """The next queued plan, oldest first."""
        return self._pending.popleft() if self._pending else None

    def expand(self, grant_order, accesses) -> int:
        """Mine one explored schedule for new branch points.

        Returns the number of *new* plans queued.  ``grant_order`` and
        ``accesses`` come from the schedule's explore artifact.
        """
        added = 0
        for pair in racing_pairs(accesses, self.config,
                                 limit=self.branch_limit):
            prefix = branch_prefix(grant_order, pair)
            self.branches_generated += 1
            if self.offer(SchedulePlan(prefix=prefix)):
                added += 1
        return added
