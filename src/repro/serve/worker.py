"""The ``repro worker`` process: the fleet's pull-side loop.

A worker owns no state the service cannot reconstruct.  Its whole
life is::

    claim -> execute (heartbeating) -> complete -> claim -> ...

**Claim** asks the front end for one job and receives it together
with a lease (opaque id + TTL), the heartbeat interval, and the
per-job timeout the server's admission policy promises.  **Execute**
runs the job through the runner's
:func:`~repro.runner.jobs.invoke` envelope on a dedicated thread --
which is exactly what makes the guard's
:class:`~repro.guard.watchdog.WatchdogTimer` the deadline enforcer
(``invoke`` arms it automatically off the main thread) -- while the
main thread renews the lease every ``heartbeat_interval`` seconds.
**Complete** uploads the envelope plus a SHA-256 digest of the
canonical artifact bytes so the server can verify the parity contract
before journaling the terminal transition.

Failure discipline, in order of what can go wrong:

* Every HTTP call retries under the runner's decorrelated-jitter
  :class:`~repro.runner.retry.RetryPolicy` -- but only *transport*
  failures (unreachable server, 5xx).  A definitive server answer
  (401, 404, 409) is information, not flake, and is never retried.
* A heartbeat answered 409 means the lease is lost (expired and
  requeued, or completed elsewhere): the worker asynchronously raises
  :class:`LeaseLost` into the execution thread and abandons the job
  without uploading -- the service's requeue sweep owns it now.
* If the worker dies entirely (SIGKILL, power loss), no protocol step
  is needed: the lease expires on its own and the job requeues.  The
  artifact-digest verification on upload plus the queue's terminal
  state make the eventual completion exactly-once even when the dead
  worker's upload arrives late.

Workers are identified by ``hostname-pid`` by default -- unique
enough for a fleet, stable enough to read in logs.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import signal
import socket
import threading
import time

from repro.errors import ServeError
from repro.runner import jobs as jobs_module
from repro.runner.cache import encode_artifact
from repro.runner.retry import RetryPolicy, retrying_call
from repro.serve.client import ServeClient
from repro.serve.kinds import build_job_spec, execute_job_spec
from repro.serve.lease import heartbeat_interval

#: Idle delay between claim attempts when the queue is empty.
DEFAULT_POLL_INTERVAL = 0.5


class LeaseLost(Exception):
    """The server reassigned (or expired) this worker's lease."""


class _Transient(Exception):
    """A retryable transport failure (wrapped for retrying_call)."""


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _abort_thread(thread: threading.Thread, exception: type) -> None:
    """Asynchronously raise ``exception`` in ``thread`` (the same
    ``PyThreadState_SetAsyncExc`` mechanism as the guard's watchdog
    timer, fired on demand instead of on a clock)."""
    if thread.ident is None or not thread.is_alive():
        return
    ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(thread.ident), ctypes.py_object(exception))


class ServeWorker:
    """One fleet worker against one serve front end."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321, *,
                 worker_id: str | None = None,
                 token: str | None = None,
                 cache_root=None, cache_salt: str | None = None,
                 lease_ttl: float | None = None,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 max_jobs: int | None = None,
                 idle_exit: float | None = None,
                 retry: RetryPolicy | None = None,
                 job_fn=execute_job_spec,
                 quiet: bool = False) -> None:
        self.worker_id = worker_id or default_worker_id()
        self.client = ServeClient(host, port, token=token)
        self.cache_root = cache_root
        self.cache_salt = cache_salt
        self.lease_ttl = lease_ttl
        self.poll_interval = max(0.05, float(poll_interval))
        self.max_jobs = max_jobs
        self.idle_exit = idle_exit
        self.retry = retry or RetryPolicy(max_attempts=5,
                                          backoff_base=0.1,
                                          backoff_max=2.0,
                                          max_elapsed=30.0)
        self.job_fn = job_fn
        self.quiet = quiet
        self.completed = 0
        self.abandoned = 0
        self.failed = 0
        self._stop = threading.Event()

    # -- plumbing -------------------------------------------------------

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[worker {self.worker_id}] {message}", flush=True)

    def stop(self) -> None:
        """Ask the loop to exit after the current job."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """SIGINT/SIGTERM finish the current job, then exit cleanly
        (SIGKILL is the crash-drill path: the lease expires for us)."""
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                signal.signal(signum, lambda *_: self.stop())
            except ValueError:
                return  # not the main thread; the caller owns signals

    def _call(self, what: str, fn):
        """One server call under the jittered retry policy.

        Transport failures (unreachable, 5xx) retry; definitive
        answers (4xx) propagate immediately as :class:`ServeError`.
        """
        def attempt():
            try:
                return fn()
            except ServeError as error:
                if error.status and error.status < 500:
                    raise  # a real answer, not a flake
                raise _Transient(str(error)) from error

        def on_retry(index, delay, error):
            self._log(f"{what} failed ({error}); retry {index} "
                      f"in {delay:.2f}s")

        try:
            return retrying_call(
                attempt, policy=self.retry,
                seed=f"{self.worker_id}:{what}",
                retry_on=(_Transient,), on_retry=on_retry)
        except _Transient as error:
            cause = error.__cause__
            raise cause if isinstance(cause, ServeError) \
                else ServeError(str(error)) from None

    # -- the loop -------------------------------------------------------

    def run(self) -> int:
        """Claim and execute until stopped; returns jobs completed."""
        self._log(f"polling {self.client.host}:{self.client.port}")
        idle_since: float | None = None
        while not self._stop.is_set():
            if self.max_jobs is not None \
                    and self.completed >= self.max_jobs:
                break
            reply = self._call(
                "claim", lambda: self.client.claim(
                    self.worker_id, self.lease_ttl))
            job = reply.get("job")
            if not job:
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None \
                    else now
                if self.idle_exit is not None \
                        and now - idle_since >= self.idle_exit:
                    self._log("queue idle; exiting")
                    break
                self._stop.wait(self.poll_interval)
                continue
            idle_since = None
            self._run_job(job, reply)
        self._log(f"done: {self.completed} completed, "
                  f"{self.failed} failed, "
                  f"{self.abandoned} abandoned")
        return self.completed

    def _run_job(self, job: dict, reply: dict) -> None:
        lease = reply.get("lease") or {}
        lease_id = lease.get("lease_id", "")
        ttl = float(lease.get("ttl") or 30.0)
        timeout = reply.get("timeout")
        self._log(f"claimed {job['id']} ({job['kind']}, "
                  f"lease {lease_id[:8]}, ttl {ttl:g}s)")
        spec = build_job_spec(job["kind"], job["params"])
        box: dict = {}

        def execute() -> None:
            # A non-main thread on purpose: invoke() then enforces
            # the deadline with the guard's WatchdogTimer.
            try:
                box["envelope"] = jobs_module.invoke(
                    self.job_fn, spec, timeout,
                    self.cache_root, self.cache_salt)
            except LeaseLost:
                box["lost"] = True

        thread = threading.Thread(
            target=execute, daemon=True,
            name=f"exec-{job['id'][:12]}")
        thread.start()
        if not self._heartbeat_until_done(thread, job, lease_id,
                                          lease):
            # Lease lost mid-run: abandon without uploading; the
            # requeue sweep owns the job now.
            _abort_thread(thread, LeaseLost)
            thread.join(timeout=5.0)
            self.abandoned += 1
            self._log(f"abandoned {job['id']} (lease lost)")
            return
        envelope = box.get("envelope")
        if envelope is None:  # executor died without an envelope
            envelope = {"ok": False, "error_type": "WorkerError",
                        "message": "execution thread produced no "
                                   "envelope", "wall_time": 0.0}
        self._upload(job, lease_id, envelope)

    def _heartbeat_until_done(self, thread, job, lease_id,
                              lease) -> bool:
        """Renew the lease until execution finishes.

        Returns False the moment the lease is lost -- a 409 from the
        server, or heartbeat retries exhausted (we cannot *prove* the
        lease is alive, so we must assume it is not).
        """
        while thread.is_alive():
            thread.join(timeout=self._interval_for(lease))
            if not thread.is_alive():
                return True
            if self._stop.is_set():
                # Finish-then-exit: keep the lease alive; the loop
                # exits after this job uploads.
                pass
            try:
                reply = self._call(
                    "heartbeat", lambda: self.client.heartbeat(
                        self.worker_id, job["id"], lease_id))
                lease = reply.get("lease") or lease
            except ServeError as error:
                if error.status == 409:
                    return False
                self._log(f"heartbeat gave up ({error}); "
                          f"assuming lease lost")
                return False
        return True

    def _interval_for(self, lease) -> float:
        ttl = float((lease or {}).get("ttl") or 0.0)
        if ttl > 0:
            return heartbeat_interval(ttl)
        return heartbeat_interval(30.0)

    def _upload(self, job: dict, lease_id: str,
                envelope: dict) -> None:
        digest = None
        if envelope.get("ok"):
            digest = hashlib.sha256(
                encode_artifact(envelope["artifact"])).hexdigest()
        try:
            result = self._call(
                "complete", lambda: self.client.complete(
                    self.worker_id, job["id"], lease_id,
                    envelope, digest))
        except ServeError as error:
            # 404/409: the job moved on without us (completed
            # elsewhere, requeued past this lease, or rejected on
            # parity).  Nothing to retry -- log and keep claiming.
            self.abandoned += 1
            self._log(f"completion of {job['id']} refused: {error}")
            return
        status = result.get("status")
        if envelope.get("ok"):
            self.completed += 1
        else:
            self.failed += 1
        self._log(f"{job['id']} {status} "
                  f"(ok={bool(envelope.get('ok'))}, "
                  f"wall={envelope.get('wall_time', 0.0):.2f}s)")


def run_worker(host: str, port: int, **kwargs) -> int:
    """Build a :class:`ServeWorker`, wire signals, run the loop."""
    worker = ServeWorker(host, port, **kwargs)
    worker.install_signal_handlers()
    return worker.run()


__all__ = [
    "DEFAULT_POLL_INTERVAL",
    "LeaseLost",
    "ServeWorker",
    "default_worker_id",
    "run_worker",
]
