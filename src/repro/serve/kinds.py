"""Job kinds the service accepts and how each one executes.

The serve layer speaks in ``(kind, params)`` pairs.  Four kinds map
straight onto :class:`~repro.runner.specs.RunSpec` (``record``,
``replay``, ``consistency``, ``explore``) and execute through the
runner's :func:`~repro.runner.jobs.execute_spec`.  Three more wrap
higher-level drivers that have no RunSpec form:

* ``chaos``   -- a :func:`repro.faults.campaign.run_campaign` fault
  campaign;
* ``salvage`` -- :func:`repro.faults.salvage.salvage_replay` over a
  recording artifact already in the cache (addressed by hash);
* ``bench``   -- a :func:`repro.runner.baseline.collect_baseline`
  performance snapshot.

Those get a :class:`CampaignSpec`: a frozen, picklable spec with the
same ``canonical()``/``content_hash()``/``label()`` surface as
RunSpec, so the content-addressed :class:`~repro.runner.cache
.ResultCache` and the pool's :func:`~repro.runner.jobs.invoke`
envelope work unchanged for every kind.  One consequence is the serve
layer's core idempotence property: identical submissions hash
identically, so re-running a job (after a crash, or on a duplicate
submission) is answered by the artifact the first run stored.

:func:`execute_job_spec` is the single ``job_fn`` the service hands to
its executor backend -- a module-level function (picklable across the
process-pool boundary) with the ``(spec, cache)`` signature
:func:`~repro.runner.jobs.invoke` expects.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runner.jobs import execute_spec, recording_from_artifact
from repro.runner.specs import RunSpec

#: Schema stamp for campaign-spec canonical forms (cache invalidation
#: lever, independent of RunSpec's).
CAMPAIGN_SCHEMA = 1

#: Kinds that resolve to a plain RunSpec.
RUNSPEC_KINDS = ("record", "replay", "consistency", "explore")

#: Kinds that resolve to a CampaignSpec.
CAMPAIGN_KINDS = ("chaos", "salvage", "bench")

JOB_KINDS = RUNSPEC_KINDS + CAMPAIGN_KINDS

#: Per-kind allowed parameters (name -> coercion).  Everything is
#: optional except where :func:`build_job_spec` checks otherwise; an
#: unknown parameter is rejected at admission so typos fail fast
#: instead of silently hashing into a distinct (never-hit) cache key.
#: Service-level scheduling parameters (``priority``, ``deadline``)
#: never appear here: admission's
#: :func:`~repro.serve.admission.split_service_params` strips them
#: before validation, so they steer the queue without perturbing the
#: spec's content hash (the same work at two priorities is still one
#: cached artifact).
_COMMON = {"app": str, "scale": float, "seed": int}
_PARAMS = {
    "record": {**_COMMON, "mode": str, "chunk_size": int,
               "num_threads": int, "simultaneous": int},
    "replay": {**_COMMON, "mode": str, "chunk_size": int,
               "num_threads": int, "use_strata": bool,
               "perturb_seed": int},
    "consistency": {**_COMMON, "model": str, "num_threads": int,
                    "collect_trace": bool},
    "explore": {**_COMMON, "mode": str, "chunk_size": int,
                "num_threads": int, "schedule_seed": int},
    "chaos": {**_COMMON, "mode": str, "plan_seed": int,
              "fault_count": int, "checkpoint_every": int},
    "salvage": {"recording_hash": str, "max_events": int},
    "bench": {**_COMMON, "jobs": int},
}


def validate_params(kind: str, params: dict) -> dict:
    """Check and coerce a raw parameter dictionary for ``kind``.

    Returns a new dictionary with every value coerced to its declared
    type; raises :class:`ConfigurationError` on an unknown kind, an
    unknown parameter, or an uncoercible value.
    """
    if kind not in JOB_KINDS:
        raise ConfigurationError(
            f"unknown job kind {kind!r} "
            f"(expected one of {', '.join(JOB_KINDS)})")
    if not isinstance(params, dict):
        raise ConfigurationError(
            f"{kind} params must be an object, got "
            f"{type(params).__name__}")
    allowed = _PARAMS[kind]
    clean: dict = {}
    for name, value in params.items():
        if name not in allowed:
            raise ConfigurationError(
                f"{kind} jobs take no parameter {name!r} "
                f"(allowed: {', '.join(sorted(allowed))})")
        coerce = allowed[name]
        try:
            if coerce is bool and not isinstance(value, bool):
                raise TypeError  # "true"/1 must not silently coerce
            clean[name] = coerce(value)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"{kind} parameter {name!r} must be "
                f"{coerce.__name__}, got {value!r}") from None
    return clean


@dataclass(frozen=True)
class CampaignSpec:
    """Content-hashed spec for the non-RunSpec kinds.

    Mirrors the RunSpec cache contract: ``canonical()`` is a
    fully-determined JSON-stable dictionary, ``content_hash()`` its
    SHA-256, ``label()`` a short human name.  ``params`` is a sorted
    tuple of ``(name, value)`` pairs so the dataclass stays hashable
    and order-insensitive to construct.
    """

    kind: str
    params: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in CAMPAIGN_KINDS:
            raise ConfigurationError(
                f"unknown campaign kind {self.kind!r}")
        object.__setattr__(
            self, "params",
            tuple(sorted((str(k), v) for k, v in self.params)))

    @property
    def param_dict(self) -> dict:
        return dict(self.params)

    def canonical(self) -> dict:
        data = {"schema": CAMPAIGN_SCHEMA, "kind": self.kind}
        for name, value in self.params:
            data[name] = repr(value) if isinstance(value, float) \
                else value
        return data

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self) -> str:
        return hashlib.sha256(
            self.canonical_json().encode()).hexdigest()

    def label(self) -> str:
        params = self.param_dict
        app = params.get("app") or \
            params.get("recording_hash", "")[:12]
        return f"{self.kind}:{app}" if app else self.kind


def build_job_spec(kind: str, params: dict):
    """Resolve a validated ``(kind, params)`` pair to its spec.

    Returns a :class:`RunSpec` or a :class:`CampaignSpec`; either way
    the result is frozen, picklable and content-hashed.
    """
    params = validate_params(kind, params)
    if kind == "record":
        return RunSpec.record(
            params.get("app", "fft"), params.get("mode", "order_only"),
            chunk_size=params.get("chunk_size", 0),
            num_threads=params.get("num_threads", 8),
            simultaneous=params.get("simultaneous", 0),
            scale=params.get("scale", 1.0), seed=params.get("seed", 11))
    if kind == "replay":
        return RunSpec.replay(
            params.get("app", "fft"), params.get("mode", "order_only"),
            use_strata=params.get("use_strata", False),
            perturb_seed=params.get("perturb_seed"),
            chunk_size=params.get("chunk_size", 0),
            num_threads=params.get("num_threads", 8),
            scale=params.get("scale", 1.0), seed=params.get("seed", 11))
    if kind == "consistency":
        return RunSpec.consistency(
            params.get("app", "fft"), params.get("model", "sc"),
            num_threads=params.get("num_threads", 8),
            collect_trace=params.get("collect_trace", False),
            scale=params.get("scale", 1.0), seed=params.get("seed", 11))
    if kind == "explore":
        return RunSpec.explore(
            params.get("app", "fft"), params.get("mode", "order_only"),
            schedule_seed=params.get("schedule_seed"),
            num_threads=params.get("num_threads", 8),
            chunk_size=params.get("chunk_size", 0),
            scale=params.get("scale", 1.0), seed=params.get("seed", 11))
    if kind == "salvage" and "recording_hash" not in params:
        raise ConfigurationError(
            "salvage jobs need a recording_hash parameter")
    return CampaignSpec(kind=kind, params=tuple(params.items()))


def _campaign_artifact(spec: CampaignSpec, body: dict) -> dict:
    return {
        "schema": 1,
        "kind": spec.kind,
        "spec": spec.canonical(),
        "spec_hash": spec.content_hash(),
        **body,
    }


def _run_chaos(spec: CampaignSpec, cache) -> dict:
    from repro.core.modes import ExecutionMode
    from repro.faults.campaign import run_campaign

    params = spec.param_dict
    report = run_campaign(
        params.get("app", "fft"),
        ExecutionMode(params.get("mode", "order_only")),
        scale=params.get("scale", 0.25), seed=params.get("seed", 1),
        plan_seed=params.get("plan_seed", 7),
        fault_count=params.get("fault_count", 12),
        checkpoint_every=params.get("checkpoint_every", 32))
    return _campaign_artifact(spec, {
        "metrics": {
            "injected": len(report.results),
            "failures": len(report.failures),
            "invariant_ok": report.invariant_ok,
        },
        "report": report.as_dict(),
    })


def _run_salvage(spec: CampaignSpec, cache) -> dict:
    from repro.faults.salvage import salvage_replay

    params = spec.param_dict
    if cache is None:
        raise ConfigurationError(
            "salvage jobs need a result cache to resolve "
            "recording_hash")
    recording_artifact = cache.load_by_hash(params["recording_hash"])
    if recording_artifact is None:
        raise ConfigurationError(
            f"no cached artifact {params['recording_hash'][:12]}... "
            f"to salvage (record it first)")
    recording = recording_from_artifact(recording_artifact)
    report = salvage_replay(recording,
                            max_events=params.get("max_events"))
    return _campaign_artifact(spec, {
        "metrics": {"coverage": report.coverage},
        "report": report.as_dict(),
    })


def _run_bench(spec: CampaignSpec, cache) -> dict:
    from repro.runner.baseline import collect_baseline

    params = spec.param_dict
    baseline = collect_baseline(
        params.get("app", "fft"), scale=params.get("scale", 0.3),
        seed=params.get("seed", 11), jobs=params.get("jobs", 1))
    return _campaign_artifact(spec, {
        "metrics": {"modes": sorted(baseline.get("modes", {}))},
        "baseline": baseline,
    })


_CAMPAIGN_RUNNERS = {
    "chaos": _run_chaos,
    "salvage": _run_salvage,
    "bench": _run_bench,
}


def execute_job_spec(spec, cache=None) -> dict:
    """The service's ``job_fn``: run any spec kind to an artifact.

    Module-level and importable by name, so it crosses the
    process-pool boundary, and shaped ``(spec, cache)`` to slot into
    :func:`repro.runner.jobs.invoke` unchanged.
    """
    if isinstance(spec, RunSpec):
        return execute_spec(spec, cache)
    return _CAMPAIGN_RUNNERS[spec.kind](spec, cache)


__all__ = [
    "CAMPAIGN_KINDS",
    "CampaignSpec",
    "JOB_KINDS",
    "RUNSPEC_KINDS",
    "build_job_spec",
    "execute_job_spec",
    "validate_params",
]
