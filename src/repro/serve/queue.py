"""Crash-consistent durable job queue.

The queue is a write-ahead journal plus an in-memory index.  Every
accepted job and every state transition appends one self-checking line
to ``<data-dir>/queue.jsonl`` **before** the transition is
acknowledged anywhere else (HTTP response, SSE event, worker pickup)::

    <crc32 of payload, 8 hex chars> <payload JSON>\\n

The payload is a full job snapshot (``{"lsn": N, "job": {...}}``), so
recovery is *newest wins*: replay the journal, keep the last snapshot
per job id.  Appends are single ``write`` calls on an ``O_APPEND``
handle followed by flush + fsync -- the same durability discipline as
:mod:`repro.guard.journal` -- so a SIGKILL at any byte leaves a
journal whose longest valid prefix contains every acknowledged
transition.  The CRC makes the torn tail detectable: recovery parses
until the first bad line, truncates the file back to the good
boundary, and continues from there.  Nothing acknowledged is ever
lost; nothing is ever replayed twice into the index (newest-wins is
idempotent).

Jobs that were ``running`` when the process died are requeued (the
state machine's one backward edge) with a fresh journaled snapshot:
job execution is a pure function of a content-hashed spec, so the
rerun either recomputes the same artifact or is answered by the cache
entry the dead process already stored.

Thread-safety: all mutation happens under one lock (HTTP accept loop
and worker threads share the queue).  Each journaled transition also
notifies registered observers -- the SSE event log rides on these.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from collections import deque
from pathlib import Path

from repro.serve.model import (
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    Job,
    census,
    job_id,
)

JOURNAL_NAME = "queue.jsonl"


def _frame(payload: str) -> str:
    """One journal line: crc32 guard + payload."""
    return f"{zlib.crc32(payload.encode()):08x} {payload}\n"


def _parse_line(line: str):
    """Decode one journal line, or ``None`` if torn/corrupt."""
    if not line.endswith("\n"):
        return None  # torn tail: the write never completed
    body = line[:-1]
    if len(body) < 10 or body[8] != " ":
        return None
    crc_text, payload = body[:8], body[9:]
    try:
        if int(crc_text, 16) != zlib.crc32(payload.encode()):
            return None
        record = json.loads(payload)
    except ValueError:
        return None
    if not isinstance(record, dict) or "job" not in record:
        return None
    return record


def read_journal(path: Path) -> tuple[list[dict], int]:
    """The journal's longest valid prefix.

    Returns ``(records, good_bytes)`` where ``good_bytes`` is the file
    offset of the first invalid line (= the truncation point).
    Parsing stops at the first bad line: a torn write corrupts only
    the suffix, never an interior record, because lines are appended
    with single writes.
    """
    records: list[dict] = []
    good = 0
    try:
        with open(path, "rb") as handle:
            for raw in handle:
                try:
                    line = raw.decode("utf-8")
                except UnicodeDecodeError:
                    break  # corruption is data, not an exception
                record = _parse_line(line)
                if record is None:
                    break
                records.append(record)
                good += len(raw)
    except OSError:
        return [], 0
    return records, good


class JobQueue:
    """Durable FIFO of :class:`Job` with journaled transitions."""

    def __init__(self, data_dir: str | os.PathLike) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.data_dir / JOURNAL_NAME
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._ready: deque[str] = deque()
        self._observers: list = []
        self._lsn = 0
        self._next_seq = 0
        self.recovered_jobs = 0
        self.requeued_jobs = 0
        self.truncated_bytes = 0
        self._recover()
        self._handle = open(self.journal_path, "a",
                            encoding="utf-8", newline="\n")

    # -- journal --------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild state from the journal's valid prefix."""
        records, good = read_journal(self.journal_path)
        try:
            size = self.journal_path.stat().st_size
        except OSError:
            size = 0
        if good < size:
            # Torn tail from a crash mid-append: cut it off so the
            # next append starts on a clean line boundary.
            self.truncated_bytes = size - good
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(good)
        requeue = []
        for record in records:  # newest snapshot per id wins
            job = Job.from_dict(record["job"])
            self._jobs[job.id] = job
            self._lsn = max(self._lsn, record.get("lsn", 0))
            self._next_seq = max(self._next_seq, job.seq + 1)
        for job in sorted(self._jobs.values(), key=lambda j: j.seq):
            if job.state == STATE_QUEUED:
                self._ready.append(job.id)
            elif job.state == STATE_RUNNING:
                requeue.append(job)
        self.recovered_jobs = len(self._jobs)
        # Requeues are journaled below, after the handle opens -- done
        # lazily in start_recovered_jobs() so callers observe the
        # crashed state first if they want to.
        self._pending_requeue = requeue

    def recover_running(self) -> list[Job]:
        """Requeue jobs that were mid-execution at crash time.

        Journals a fresh snapshot per requeued job and returns them.
        Idempotent: a second call finds nothing running.
        """
        with self._lock:
            requeued = []
            for job in self._pending_requeue:
                job.transition(STATE_QUEUED)
                self._append(job)
                self._ready.append(job.id)
                requeued.append(job)
                self.requeued_jobs += 1
            self._pending_requeue = []
        for job in requeued:
            self._notify(job)
        return requeued

    def _append(self, job: Job) -> None:
        """Journal ``job``'s current snapshot durably (lock held)."""
        self._lsn += 1
        payload = json.dumps({"lsn": self._lsn, "job": job.as_dict()},
                             sort_keys=True, separators=(",", ":"))
        self._handle.write(_frame(payload))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _notify(self, job: Job) -> None:
        for observer in list(self._observers):
            observer(self._lsn, job)

    def subscribe(self, observer) -> None:
        """``observer(lsn, job)`` fires after each durable transition."""
        self._observers.append(observer)

    # -- operations -----------------------------------------------------

    @property
    def lsn(self) -> int:
        """Last durable log sequence number (SSE event ids)."""
        return self._lsn

    def submit(self, tenant: str, kind: str, params: dict,
               spec_hash: str, now: float) -> Job:
        """Accept a new job: journal first, then enqueue."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            job = Job(id=job_id(seq, spec_hash), seq=seq,
                      tenant=tenant, kind=kind, params=dict(params),
                      spec_hash=spec_hash, submitted_at=now)
            self._jobs[job.id] = job
            self._append(job)
            self._ready.append(job.id)
        self._notify(job)
        return job

    def submit_resolved(self, tenant: str, kind: str, params: dict,
                        spec_hash: str, now: float,
                        artifact_hash: str) -> Job:
        """Accept a job already answered by the cache: journal it
        straight into ``done`` (the ``queued -> done`` edge)."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            job = Job(id=job_id(seq, spec_hash), seq=seq,
                      tenant=tenant, kind=kind, params=dict(params),
                      spec_hash=spec_hash, submitted_at=now,
                      from_cache=True, artifact_hash=artifact_hash,
                      finished_at=now)
            job.transition(STATE_DONE)
            self._jobs[job.id] = job
            self._append(job)
        self._notify(job)
        return job

    def claim(self, now: float) -> Job | None:
        """Pop the next queued job and mark it running, durably."""
        with self._lock:
            while self._ready:
                job = self._jobs[self._ready.popleft()]
                if job.state != STATE_QUEUED:
                    continue  # stale entry (requeue churn)
                job.transition(STATE_RUNNING)
                job.attempts += 1
                job.started_at = now
                self._append(job)
                break
            else:
                return None
        self._notify(job)
        return job

    def finish(self, job: Job, *, now: float,
               artifact_hash: str | None = None,
               error: str | None = None,
               from_cache: bool = False) -> Job:
        """Move a running job to its terminal state, durably."""
        with self._lock:
            job.finished_at = now
            job.from_cache = job.from_cache or from_cache
            if error is None:
                job.artifact_hash = artifact_hash
                job.transition(STATE_DONE)
            else:
                job.error = error
                job.transition(STATE_FAILED)
            self._append(job)
        self._notify(job)
        return job

    # -- queries --------------------------------------------------------

    def get(self, identifier: str) -> Job | None:
        """Look up by job id."""
        return self._jobs.get(identifier)

    def jobs(self, tenant: str | None = None,
             state: str | None = None) -> list[Job]:
        """All jobs, optionally filtered, in acceptance order."""
        with self._lock:
            selected = sorted(self._jobs.values(),
                              key=lambda j: j.seq)
        if tenant is not None:
            selected = [j for j in selected if j.tenant == tenant]
        if state is not None:
            selected = [j for j in selected if j.state == state]
        return selected

    def counts(self):
        """Point-in-time state census (admission + gauges)."""
        with self._lock:
            return census(self._jobs.values())

    def close(self) -> None:
        """Release the journal handle (the journal itself persists)."""
        try:
            self._handle.close()
        except OSError:
            pass


__all__ = ["JOURNAL_NAME", "JobQueue", "read_journal"]
