"""Crash-consistent durable job queue with bounded, segmented journals.

The queue is a write-ahead journal plus an in-memory index.  Every
accepted job and every state transition appends one self-checking line
to the **active segment** (``<data-dir>/queue.jsonl``) **before** the
transition is acknowledged anywhere else (HTTP response, SSE event,
worker pickup)::

    <crc32 of payload, 8 hex chars> <payload JSON>\\n

The payload is a full job snapshot (``{"lsn": N, "job": {...}}``) or a
compaction marker (``{"lsn": N, "meta": {...}}``), so recovery is
*newest wins*: replay every segment in order, keep the last snapshot
per job id.  Appends are single ``write`` calls on an ``O_APPEND``
handle followed by flush + fsync -- the same durability discipline as
:mod:`repro.guard.journal` -- so a SIGKILL at any byte leaves a
journal whose longest valid prefix contains every acknowledged
transition.  The CRC makes the torn tail detectable: recovery parses
until the first bad line, truncates the active segment back to the
good boundary, and continues from there.  Nothing acknowledged is
ever lost; nothing is ever replayed twice into the index (newest-wins
is idempotent).

**Rotation and compaction** keep an eternal server's journal bounded:

* when the active segment exceeds ``segment_bytes`` it is *sealed* --
  atomically renamed to ``queue-NNNNNN.jsonl`` -- and a fresh active
  segment starts;
* when the sealed-segment count reaches ``compact_after``, compaction
  rewrites only the *live state* -- the newest snapshot of every job,
  preserving each snapshot's original LSN -- into one new sealed
  segment, prefixed by a ``{"meta": {"compacted_through": L}}``
  marker.  The compacted segment is written to a temp file, fsynced,
  and atomically renamed **before** any old segment is deleted, so a
  crash at any byte of compaction recovers from either the old
  segments or the finished compacted one -- never from a torn hybrid.
  ``retain_terminal`` optionally drops all but the newest N terminal
  jobs during compaction (the only place history is ever discarded).

``compacted_through`` is the contract with SSE resume: event ids are
journal LSNs, and every individual event with ``lsn <=
compacted_through`` may have been superseded away -- a client
resuming from older than that must be given a full snapshot instead
of a silent gap (:mod:`repro.serve.sse` implements exactly that).

**Leases** make remote execution crash-safe.  A claim by a worker
journals the lease (worker id, lease id, TTL, expiry) inside the
``running`` snapshot; heartbeats renew the in-memory expiry only.
:meth:`JobQueue.expire_leases` is the requeue sweep: an expired lease
takes the journal's one backward edge (``running -> queued``), and a
job whose leases have expired ``max_expiries`` times is declared
poison and failed with a structured record instead of looping
forever.  Claim order is ``(priority, enqueue LSN)`` -- lower
priorities first, FIFO within a priority, requeued jobs rejoining at
their requeue LSN -- and a job past its deadline is failed at claim
time rather than handed to a worker.

Thread-safety: all mutation happens under one lock (HTTP accept loop
and worker threads share the queue).  Each journaled transition also
notifies registered observers -- the SSE event log rides on these.
"""

from __future__ import annotations

import heapq
import json
import os
import re
import threading
import zlib
from collections import Counter
from pathlib import Path

from repro.serve.lease import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_LEASE_EXPIRIES,
    new_lease_id,
)
from repro.serve.model import (
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    Job,
    census,
    job_id,
)

JOURNAL_NAME = "queue.jsonl"

#: Sealed segment naming: ``queue-000001.jsonl`` etc.
SEGMENT_PATTERN = re.compile(r"^queue-(\d{6})\.jsonl$")

#: Rotate the active segment past this size (bounded journal files).
DEFAULT_SEGMENT_BYTES = 4 << 20

#: Compact once this many sealed segments accumulate.
DEFAULT_COMPACT_AFTER = 4


def _segment_name(seq: int) -> str:
    return f"queue-{seq:06d}.jsonl"


def _frame(payload: str) -> str:
    """One journal line: crc32 guard + payload."""
    return f"{zlib.crc32(payload.encode()):08x} {payload}\n"


def _parse_line(line: str):
    """Decode one journal line, or ``None`` if torn/corrupt."""
    if not line.endswith("\n"):
        return None  # torn tail: the write never completed
    body = line[:-1]
    if len(body) < 10 or body[8] != " ":
        return None
    crc_text, payload = body[:8], body[9:]
    try:
        if int(crc_text, 16) != zlib.crc32(payload.encode()):
            return None
        record = json.loads(payload)
    except ValueError:
        return None
    if not isinstance(record, dict) or \
            ("job" not in record and "meta" not in record):
        return None
    return record


def read_journal(path: Path) -> tuple[list[dict], int]:
    """One segment file's longest valid prefix.

    Returns ``(records, good_bytes)`` where ``good_bytes`` is the file
    offset of the first invalid line (= the truncation point).
    Parsing stops at the first bad line: a torn write corrupts only
    the suffix, never an interior record, because lines are appended
    with single writes.
    """
    records: list[dict] = []
    good = 0
    try:
        with open(path, "rb") as handle:
            for raw in handle:
                try:
                    line = raw.decode("utf-8")
                except UnicodeDecodeError:
                    break  # corruption is data, not an exception
                record = _parse_line(line)
                if record is None:
                    break
                records.append(record)
                good += len(raw)
    except OSError:
        return [], 0
    return records, good


def segment_paths(data_dir: Path) -> list[Path]:
    """Sealed segments in creation (= numeric) order."""
    found = []
    try:
        names = os.listdir(data_dir)
    except OSError:
        return []
    for name in names:
        match = SEGMENT_PATTERN.match(name)
        if match:
            found.append((int(match.group(1)), data_dir / name))
    return [path for _seq, path in sorted(found)]


def read_journal_dir(data_dir) -> tuple[list[dict], int]:
    """Every record across sealed segments plus the active journal.

    Returns ``(records, compacted_through)``: records in journal
    order (sealed segments numerically, active last; longest valid
    prefix of each), and the newest compaction marker's LSN (0 when
    never compacted).  Meta records are filtered out of ``records``.
    """
    data_dir = Path(data_dir)
    records: list[dict] = []
    compacted_through = 0
    for path in segment_paths(data_dir) + [data_dir / JOURNAL_NAME]:
        segment_records, _good = read_journal(path)
        for record in segment_records:
            meta = record.get("meta")
            if meta is not None:
                compacted_through = max(
                    compacted_through,
                    int(meta.get("compacted_through", 0)))
                continue
            records.append(record)
    return records, compacted_through


class JobQueue:
    """Durable priority queue of :class:`Job` with journaled
    transitions, worker leases, and segment rotation/compaction."""

    def __init__(self, data_dir: str | os.PathLike, *,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 compact_after: int = DEFAULT_COMPACT_AFTER,
                 retain_terminal: int | None = None) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.data_dir / JOURNAL_NAME
        self.segment_bytes = max(4096, int(segment_bytes))
        self.compact_after = max(1, int(compact_after))
        self.retain_terminal = retain_terminal
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._job_lsn: dict[str, int] = {}
        #: Claim order: (priority, enqueue LSN, job id) min-heap.
        self._ready: list[tuple[int, int, str]] = []
        self._observers: list = []
        self._lsn = 0
        self._next_seq = 0
        self._next_segment = 1
        self._active_bytes = 0
        self.recovered_jobs = 0
        self.requeued_jobs = 0
        self.truncated_bytes = 0
        self.compacted_through = 0
        self.rotations = 0
        self.compactions = 0
        self.lease_expired = 0
        self.poisoned_jobs = 0
        self.deadline_failed = 0
        self._recover()
        self._handle = open(self.journal_path, "a",
                            encoding="utf-8", newline="\n")

    # -- journal --------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild state from every segment's valid prefix."""
        sealed = segment_paths(self.data_dir)
        if sealed:
            last_seq = int(SEGMENT_PATTERN.match(
                sealed[-1].name).group(1))
            self._next_segment = last_seq + 1
        records: list[dict] = []
        for path in sealed:
            segment_records, _good = read_journal(path)
            records.extend(segment_records)
        active_records, good = read_journal(self.journal_path)
        records.extend(active_records)
        try:
            size = self.journal_path.stat().st_size
        except OSError:
            size = 0
        if good < size:
            # Torn tail from a crash mid-append: cut it off so the
            # next append starts on a clean line boundary.  Only the
            # active segment can tear; sealed segments are immutable.
            self.truncated_bytes = size - good
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(good)
        self._active_bytes = good
        requeue = []
        for record in records:  # newest snapshot per id wins
            meta = record.get("meta")
            if meta is not None:
                self.compacted_through = max(
                    self.compacted_through,
                    int(meta.get("compacted_through", 0)))
                self._lsn = max(self._lsn, record.get("lsn", 0))
                continue
            job = Job.from_dict(record["job"])
            self._jobs[job.id] = job
            self._job_lsn[job.id] = record.get("lsn", 0)
            self._lsn = max(self._lsn, record.get("lsn", 0))
            self._next_seq = max(self._next_seq, job.seq + 1)
        rearm = []
        for job in sorted(self._jobs.values(), key=lambda j: j.seq):
            if job.state == STATE_QUEUED:
                heapq.heappush(
                    self._ready,
                    (job.priority, self._job_lsn[job.id], job.id))
            elif job.state == STATE_RUNNING:
                if job.lease_id is not None:
                    rearm.append(job)  # worker may still be alive
                else:
                    requeue.append(job)
        self.recovered_jobs = len(self._jobs)
        # Requeues are journaled below, after the handle opens -- done
        # lazily in recover_running() so callers observe the crashed
        # state first if they want to.  Leased running jobs are not
        # requeued: their expiry clock is re-armed instead, giving a
        # still-live worker one TTL to heartbeat before the sweep.
        self._pending_requeue = requeue
        self._pending_rearm = rearm

    def recover_running(self, now: float | None = None
                        ) -> list[Job]:
        """Requeue jobs that were mid-execution at crash time.

        Journals a fresh snapshot per requeued job and returns them.
        Leased (remote) running jobs are *re-armed* rather than
        requeued: their lease expiry restarts at ``now + ttl`` so a
        worker that survived the server restart keeps its claim by
        heartbeating; a dead worker's job falls to the next
        :meth:`expire_leases` sweep.  Idempotent: a second call finds
        nothing pending.
        """
        import time as _time
        now = _time.time() if now is None else now
        with self._lock:
            requeued = []
            for job in self._pending_requeue:
                job.transition(STATE_QUEUED)
                self._append(job)
                heapq.heappush(self._ready,
                               (job.priority, self._lsn, job.id))
                requeued.append(job)
                self.requeued_jobs += 1
            self._pending_requeue = []
            for job in self._pending_rearm:
                job.lease_expires_at = now + (job.lease_ttl
                                              or DEFAULT_LEASE_TTL)
            self._pending_rearm = []
        for job in requeued:
            self._notify(job)
        return requeued

    def _append(self, job: Job) -> None:
        """Journal ``job``'s current snapshot durably (lock held)."""
        self._lsn += 1
        payload = json.dumps({"lsn": self._lsn, "job": job.as_dict()},
                             sort_keys=True, separators=(",", ":"))
        self._write_line(payload)
        self._job_lsn[job.id] = self._lsn
        self._maybe_roll()

    def _write_line(self, payload: str) -> None:
        line = _frame(payload)
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._active_bytes += len(line.encode())

    def _maybe_roll(self) -> None:
        """Rotate (and maybe compact) once the active segment is full
        (lock held)."""
        if self._active_bytes < self.segment_bytes:
            return
        self._rotate()
        if len(segment_paths(self.data_dir)) >= self.compact_after:
            self._compact_locked()

    def _rotate(self) -> None:
        """Seal the active segment and start a fresh one (lock held)."""
        self._handle.close()
        sealed = self.data_dir / _segment_name(self._next_segment)
        os.replace(self.journal_path, sealed)
        self._next_segment += 1
        self._handle = open(self.journal_path, "a",
                            encoding="utf-8", newline="\n")
        self._active_bytes = 0
        self.rotations += 1

    def compact(self) -> int:
        """Force a compaction pass; returns bytes reclaimed."""
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        """Rewrite live state into one sealed segment (lock held).

        Crash-safe ordering: the compacted segment is fully written
        and fsynced under a temp name, atomically renamed into place,
        and only *then* are the superseded segments deleted and the
        active segment reset.  Recovery at any intermediate point sees
        either the old segments, or the compacted one plus harmless
        duplicates -- newest-wins makes both converge.
        """
        before = self._active_bytes + sum(
            path.stat().st_size for path in segment_paths(self.data_dir)
            if path.exists())
        drop: list[Job] = []
        if self.retain_terminal is not None:
            terminal = sorted(
                (job for job in self._jobs.values() if job.terminal),
                key=lambda j: j.seq)
            if len(terminal) > self.retain_terminal:
                keep_from = len(terminal) - self.retain_terminal
                drop = terminal[:keep_from]
        for job in drop:
            del self._jobs[job.id]
            del self._job_lsn[job.id]
        snapshots = sorted(self._jobs.values(),
                           key=lambda j: self._job_lsn[j.id])
        seq = self._next_segment
        self._next_segment += 1
        sealed = self.data_dir / _segment_name(seq)
        tmp = sealed.with_suffix(".tmp")
        marker = json.dumps(
            {"lsn": self._lsn,
             "meta": {"compacted_through": self._lsn,
                      "jobs": len(snapshots),
                      "dropped_terminal": len(drop)}},
            sort_keys=True, separators=(",", ":"))
        with open(tmp, "w", encoding="utf-8", newline="\n") as out:
            out.write(_frame(marker))
            for job in snapshots:
                out.write(_frame(json.dumps(
                    {"lsn": self._job_lsn[job.id],
                     "job": job.as_dict()},
                    sort_keys=True, separators=(",", ":"))))
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, sealed)  # compacted segment is durable NOW
        # Only after the rename may history be discarded.
        for path in segment_paths(self.data_dir):
            if path != sealed:
                try:
                    path.unlink()
                except OSError:
                    pass
        self._handle.close()
        self._handle = open(self.journal_path, "w",
                            encoding="utf-8", newline="\n")
        self._active_bytes = 0
        self.compacted_through = self._lsn
        self.compactions += 1
        after = sealed.stat().st_size
        return max(0, before - after)

    def _notify(self, job: Job) -> None:
        for observer in list(self._observers):
            observer(self._job_lsn.get(job.id, self._lsn), job)

    def subscribe(self, observer) -> None:
        """``observer(lsn, job)`` fires after each durable transition."""
        self._observers.append(observer)

    # -- operations -----------------------------------------------------

    @property
    def lsn(self) -> int:
        """Last durable log sequence number (SSE event ids)."""
        return self._lsn

    def submit(self, tenant: str, kind: str, params: dict,
               spec_hash: str, now: float, *,
               priority: int = 0,
               deadline_at: float | None = None) -> Job:
        """Accept a new job: journal first, then enqueue."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            job = Job(id=job_id(seq, spec_hash), seq=seq,
                      tenant=tenant, kind=kind, params=dict(params),
                      spec_hash=spec_hash, submitted_at=now,
                      priority=priority, deadline_at=deadline_at)
            self._jobs[job.id] = job
            self._append(job)
            heapq.heappush(self._ready,
                           (job.priority, self._lsn, job.id))
        self._notify(job)
        return job

    def submit_resolved(self, tenant: str, kind: str, params: dict,
                        spec_hash: str, now: float,
                        artifact_hash: str) -> Job:
        """Accept a job already answered by the cache: journal it
        straight into ``done`` (the ``queued -> done`` edge)."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            job = Job(id=job_id(seq, spec_hash), seq=seq,
                      tenant=tenant, kind=kind, params=dict(params),
                      spec_hash=spec_hash, submitted_at=now,
                      from_cache=True, artifact_hash=artifact_hash,
                      finished_at=now)
            job.transition(STATE_DONE)
            self._jobs[job.id] = job
            self._append(job)
        self._notify(job)
        return job

    def claim(self, now: float, *, worker: str | None = None,
              lease_ttl: float | None = None) -> Job | None:
        """Pop the highest-priority queued job, mark it running
        durably, and (for a remote ``worker``) grant a journaled
        lease.  Jobs already past their deadline are failed here with
        a typed reason instead of being handed out.
        """
        expired: list[Job] = []
        with self._lock:
            job = None
            while self._ready:
                _prio, _lsn, candidate = heapq.heappop(self._ready)
                job = self._jobs.get(candidate)
                if job is None or job.state != STATE_QUEUED:
                    job = None
                    continue  # stale entry (requeue churn)
                if job.deadline_at is not None \
                        and now > job.deadline_at:
                    late = now - job.deadline_at
                    job.error = (f"DeadlineExpired: deadline passed "
                                 f"{late:.3f}s before claim")
                    job.failure = {"type": "deadline",
                                   "deadline_at": job.deadline_at,
                                   "late_by": late}
                    job.finished_at = now
                    job.transition(STATE_FAILED)
                    self._append(job)
                    self.deadline_failed += 1
                    expired.append(job)
                    job = None
                    continue
                job.transition(STATE_RUNNING)
                job.attempts += 1
                job.started_at = now
                if worker is not None:
                    job.grant_lease(worker, new_lease_id(),
                                    lease_ttl or DEFAULT_LEASE_TTL,
                                    now)
                self._append(job)
                break
        for dead in expired:
            self._notify(dead)
        if job is None:
            return None
        self._notify(job)
        return job

    def heartbeat(self, identifier: str, worker: str,
                  lease_id: str, now: float) -> Job | None:
        """Renew a lease; returns the job, or ``None`` if the lease
        was lost (expired and requeued, completed elsewhere, or a
        stale/forged id).  Renewals are in-memory only -- the
        journaled TTL is what recovery re-arms from.
        """
        with self._lock:
            job = self._jobs.get(identifier)
            if (job is None or job.state != STATE_RUNNING
                    or job.worker != worker
                    or job.lease_id != lease_id):
                return None
            job.lease_expires_at = now + (job.lease_ttl
                                          or DEFAULT_LEASE_TTL)
            return job

    def expire_leases(self, now: float, *,
                      max_expiries: int = DEFAULT_MAX_LEASE_EXPIRIES
                      ) -> tuple[list[Job], list[Job]]:
        """The requeue sweep: take back every job whose lease expired.

        Returns ``(requeued, poisoned)``.  A job whose leases have
        expired ``max_expiries`` times is poison -- it has killed (or
        outlived) that many workers -- and is failed with a structured
        record instead of being requeued forever.
        """
        requeued: list[Job] = []
        poisoned: list[Job] = []
        with self._lock:
            for job in list(self._jobs.values()):
                if not job.leased or job.lease_expires_at is None \
                        or job.lease_expires_at > now:
                    continue
                self._expire_one(job, now, max_expiries,
                                 requeued, poisoned)
        for job in requeued + poisoned:
            self._notify(job)
        return requeued, poisoned

    def _expire_one(self, job: Job, now: float, max_expiries: int,
                    requeued: list, poisoned: list) -> None:
        """Requeue or poison one expired-lease job (lock held)."""
        job.lease_expiries += 1
        self.lease_expired += 1
        last_worker = job.worker
        if job.lease_expiries >= max_expiries:
            job.error = (f"PoisonJob: lease expired "
                         f"{job.lease_expiries} time(s), last held "
                         f"by {last_worker!r}")
            job.failure = {"type": "poison",
                           "lease_expiries": job.lease_expiries,
                           "attempts": job.attempts,
                           "last_worker": last_worker}
            job.finished_at = now
            job.clear_lease()
            job.transition(STATE_FAILED)
            self._append(job)
            self.poisoned_jobs += 1
            poisoned.append(job)
        else:
            job.transition(STATE_QUEUED)  # clears the lease
            self._append(job)
            heapq.heappush(self._ready,
                           (job.priority, self._lsn, job.id))
            self.requeued_jobs += 1
            requeued.append(job)

    def punt(self, identifier: str, now: float, *,
             max_expiries: int = DEFAULT_MAX_LEASE_EXPIRIES
             ) -> Job | None:
        """Forcibly take a leased job back (e.g. a completion that
        failed parity verification).  Counts as a lease expiry for
        poison purposes; returns the requeued/poisoned job."""
        requeued: list[Job] = []
        poisoned: list[Job] = []
        with self._lock:
            job = self._jobs.get(identifier)
            if job is None or not job.leased:
                return None
            self._expire_one(job, now, max_expiries,
                             requeued, poisoned)
        for changed in requeued + poisoned:
            self._notify(changed)
        return (requeued + poisoned)[0]

    def finish(self, job: Job, *, now: float,
               artifact_hash: str | None = None,
               error: str | None = None,
               from_cache: bool = False,
               failure: dict | None = None) -> Job:
        """Move a running (or requeued) job to its terminal state,
        durably.  The lease, if any, dies with the transition."""
        with self._lock:
            job.finished_at = now
            job.from_cache = job.from_cache or from_cache
            job.clear_lease()
            if error is None:
                job.artifact_hash = artifact_hash
                job.transition(STATE_DONE)
            else:
                job.error = error
                job.failure = failure
                job.transition(STATE_FAILED)
            self._append(job)
        self._notify(job)
        return job

    # -- queries --------------------------------------------------------

    def get(self, identifier: str) -> Job | None:
        """Look up by job id."""
        return self._jobs.get(identifier)

    def jobs(self, tenant: str | None = None,
             state: str | None = None) -> list[Job]:
        """All jobs, optionally filtered, in acceptance order."""
        with self._lock:
            selected = sorted(self._jobs.values(),
                              key=lambda j: j.seq)
        if tenant is not None:
            selected = [j for j in selected if j.tenant == tenant]
        if state is not None:
            selected = [j for j in selected if j.state == state]
        return selected

    def counts(self):
        """Point-in-time state census (admission + gauges)."""
        with self._lock:
            return census(self._jobs.values())

    def lease_census(self, now: float) -> dict:
        """Live-lease snapshot for stats endpoints."""
        with self._lock:
            leased = [job for job in self._jobs.values()
                      if job.leased]
            holders = Counter(job.worker for job in leased)
            return {
                "leased": len(leased),
                "by_worker": dict(sorted(holders.items())),
                "expiring_soon": sum(
                    1 for job in leased
                    if job.lease_expires_at is not None
                    and job.lease_expires_at - now
                    < (job.lease_ttl or DEFAULT_LEASE_TTL) / 3.0),
            }

    def journal_stats(self) -> dict:
        """Segment/rotation/compaction census for stats endpoints."""
        sealed = segment_paths(self.data_dir)
        return {
            "lsn": self._lsn,
            "segments": len(sealed) + 1,
            "segment_bytes": self.segment_bytes,
            "active_bytes": self._active_bytes,
            "sealed_bytes": sum(p.stat().st_size for p in sealed
                                if p.exists()),
            "rotations": self.rotations,
            "compactions": self.compactions,
            "compacted_through": self.compacted_through,
        }

    def close(self) -> None:
        """Release the journal handle (the journal itself persists)."""
        try:
            self._handle.close()
        except OSError:
            pass


__all__ = [
    "DEFAULT_COMPACT_AFTER",
    "DEFAULT_SEGMENT_BYTES",
    "JOURNAL_NAME",
    "JobQueue",
    "read_journal",
    "read_journal_dir",
    "segment_paths",
]
