"""Worker leases and fleet liveness for the serve tier.

A remote worker never *owns* a job; it holds a **lease** on it: an
opaque id granted at claim time together with a TTL the worker must
keep renewing by heartbeat.  The grant is journaled with the claim
transition (durable before the worker sees the job); renewals move the
in-memory expiry only, because the journaled TTL is enough for
recovery to re-arm the expiry clock -- a restarted server gives every
leased job one full TTL for its worker to re-announce itself before
the requeue sweep takes the job back.  The lease id is what makes
completion exactly-once safe to *attempt* from anywhere: a stale
worker's upload is recognized (its lease id no longer matches) and
either accepted as a verified duplicate or refused, never double
journaled.

:class:`WorkerRegistry` is the fleet's liveness view: every claim,
heartbeat, or completion touches the calling worker's clock, and the
service asks :meth:`WorkerRegistry.degraded` before deciding whether
its local fallback workers should claim jobs.  Degradation is a
window, not a flag: the fleet is degraded exactly when no worker has
been heard from within ``window`` seconds (including "never"), and it
recovers automatically the moment any worker calls in again.
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass

#: Default lease TTL: a worker missing 3+ heartbeats loses the job.
DEFAULT_LEASE_TTL = 30.0

#: Heartbeats fire every ``ttl * HEARTBEAT_FRACTION`` seconds.
HEARTBEAT_FRACTION = 1.0 / 3.0

#: Lease expiries before a job is declared poison and failed.
DEFAULT_MAX_LEASE_EXPIRIES = 3

#: Seconds without any worker contact before the service degrades to
#: its local fallback backend.
DEFAULT_DEGRADED_AFTER = 15.0


def new_lease_id() -> str:
    """An unguessable opaque lease token."""
    return secrets.token_hex(8)


def heartbeat_interval(ttl: float) -> float:
    """How often a worker should renew a lease of ``ttl`` seconds."""
    return max(0.05, ttl * HEARTBEAT_FRACTION)


@dataclass(frozen=True)
class Lease:
    """The wire form of one granted lease (claim/heartbeat replies)."""

    job_id: str
    worker: str
    lease_id: str
    ttl: float
    expires_at: float

    def as_dict(self) -> dict:
        return {"job_id": self.job_id, "worker": self.worker,
                "lease_id": self.lease_id, "ttl": self.ttl,
                "expires_at": self.expires_at}

    @classmethod
    def for_job(cls, job) -> "Lease":
        """Project a leased :class:`~repro.serve.model.Job`'s fields."""
        return cls(job_id=job.id, worker=job.worker,
                   lease_id=job.lease_id, ttl=job.lease_ttl or 0.0,
                   expires_at=job.lease_expires_at or 0.0)


class WorkerRegistry:
    """Last-contact clock per worker and the degradation window.

    Thread-safe: touched from HTTP handler threads, read from the
    service's local worker tasks and the lease sweeper.
    """

    def __init__(self, window: float = DEFAULT_DEGRADED_AFTER) -> None:
        self.window = max(0.1, float(window))
        self._lock = threading.Lock()
        self._last_seen: dict[str, float] = {}

    def touch(self, worker: str, now: float) -> None:
        """Record contact from ``worker`` at ``now``."""
        with self._lock:
            previous = self._last_seen.get(worker, 0.0)
            self._last_seen[worker] = max(previous, now)

    def alive(self, now: float) -> list[str]:
        """Workers heard from within the window, sorted by name."""
        cutoff = now - self.window
        with self._lock:
            return sorted(worker for worker, seen
                          in self._last_seen.items() if seen >= cutoff)

    def degraded(self, now: float) -> bool:
        """True when no worker has been heard from within the window
        (a fleet that never existed is degraded too)."""
        cutoff = now - self.window
        with self._lock:
            return not any(seen >= cutoff
                           for seen in self._last_seen.values())

    def census(self, now: float) -> dict:
        """Fleet stats: per-worker last-contact age and liveness."""
        with self._lock:
            snapshot = dict(self._last_seen)
        workers = {
            worker: {"last_seen_age": round(max(0.0, now - seen), 3),
                     "alive": (now - seen) <= self.window}
            for worker, seen in sorted(snapshot.items())}
        return {"window": self.window,
                "degraded": self.degraded(now),
                "workers": workers}


__all__ = [
    "DEFAULT_DEGRADED_AFTER",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_LEASE_EXPIRIES",
    "HEARTBEAT_FRACTION",
    "Lease",
    "WorkerRegistry",
    "heartbeat_interval",
    "new_lease_id",
]
