"""Server-sent events over job state transitions.

Every durable queue transition becomes one SSE event whose ``id`` is
the journal's log sequence number, so a client that reconnects with
``Last-Event-ID: N`` (or ``?after=N``) resumes exactly where it left
off -- the event ids are as durable as the jobs themselves.  The
in-memory :class:`EventLog` is seeded from journal recovery and then
appended live from the queue's observer hook; readers are async
iterators parked on a condition variable, so a stream costs nothing
between transitions.

Wire format (one frame per transition)::

    id: <lsn>\\n
    data: {"lsn": ..., "job": {...full job snapshot...}}\\n
    \\n

Journal **compaction** complicates resume: compaction dissolves every
individual transition with ``lsn <= compacted_through`` into one
newest-wins snapshot per job, so after a restart those intermediate
event ids no longer exist.  A client reconnecting with an ``after``
older than ``compacted_through`` would see a *silent gap* -- events it
never received are simply gone.  :meth:`EventLog.replay` therefore
treats such a cursor as "too old to resume" and falls back to the full
retained snapshot (``after = 0``): the client re-receives everything
still known, which is exactly the newest state of every job, instead
of missing transitions it cannot know it missed.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.model import Job


def format_sse(event_id: int, data: dict) -> bytes:
    """Encode one SSE frame."""
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"id: {event_id}\ndata: {payload}\n\n".encode()


class EventLog:
    """Ordered, replayable log of job transitions for SSE streams.

    ``append`` may be called from worker threads (it is the queue
    observer); readers run on the event loop.  The bridge is
    ``loop.call_soon_threadsafe``, keeping list mutation and condition
    notification on the loop thread so iteration never sees a torn
    update.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 compacted_through: int = 0) -> None:
        self._loop = loop
        self._events: list[tuple[int, dict]] = []
        self._cond = asyncio.Condition()
        #: Event ids at or below this LSN were dissolved by journal
        #: compaction; resuming from older than this falls back to a
        #: full snapshot (see the module docstring).
        self.compacted_through = compacted_through

    def seed(self, lsn: int, job: Job) -> None:
        """Pre-loop insertion (journal recovery, before serving)."""
        self._events.append((lsn, {"lsn": lsn, "job": job.as_dict()}))

    def append(self, lsn: int, job: Job) -> None:
        """Queue observer: record a transition and wake streamers."""
        event = (lsn, {"lsn": lsn, "job": job.as_dict()})
        self._loop.call_soon_threadsafe(self._publish, event)

    def _publish(self, event) -> None:
        if self._events and event[0] <= self._events[-1][0]:
            return  # already seeded from the journal
        self._events.append(event)

        async def wake() -> None:
            async with self._cond:
                self._cond.notify_all()

        self._loop.create_task(wake())

    @property
    def last_id(self) -> int:
        return self._events[-1][0] if self._events else 0

    def replay(self, after: int) -> list[tuple[int, dict]]:
        """Everything already logged with id > ``after``.

        An ``after`` older than ``compacted_through`` cannot be
        resumed from -- the events between it and the compaction
        horizon no longer exist -- so it degrades to the full
        retained snapshot rather than a silent gap.
        """
        if after and after < self.compacted_through:
            after = 0
        return [(lsn, data) for lsn, data in self._events
                if lsn > after]

    async def stream(self, after: int = 0):
        """Async-iterate ``(id, data)`` events with id > ``after``,
        forever (callers decide when to stop, e.g. at a terminal job
        state)."""
        cursor = after
        while True:
            batch = self.replay(cursor)
            for lsn, data in batch:
                cursor = max(cursor, lsn)
                yield lsn, data
            if batch:
                continue  # drained a burst; re-check before sleeping
            async with self._cond:
                # Timed wait: a transition published between replay()
                # and wait() would otherwise be missed until the next
                # notify; the timeout bounds that window.
                try:
                    await asyncio.wait_for(self._cond.wait(),
                                           timeout=0.5)
                except asyncio.TimeoutError:
                    pass


__all__ = ["EventLog", "format_sse"]
