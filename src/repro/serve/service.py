"""The record/replay service: queue + cache + executor + telemetry.

:class:`ReproService` is the transport-independent core behind
``repro serve``.  It owns

* the durable :class:`~repro.serve.queue.JobQueue` (accepted work
  survives any crash),
* the content-addressed :class:`~repro.runner.cache.ResultCache`
  (identical submissions are answered without recomputation, and
  artifacts are fetchable by hash),
* a pluggable :class:`~repro.runner.executors.ExecutorBackend`
  (inline for tests and tiny deployments, a process pool for real
  parallelism -- byte-identical artifacts either way),
* :class:`~repro.serve.admission.AdmissionController` (bounded depth,
  per-tenant quotas, guard-budget job timeouts), and
* ``serve_*`` telemetry on the shared
  :class:`~repro.telemetry.metrics.MetricsRegistry` plus a ``serve``
  Perfetto track on an optional
  :class:`~repro.telemetry.tracer.Tracer`.

Execution path: a claimed job's ``(kind, params)`` resolve to a
content-hashed spec (:func:`~repro.serve.kinds.build_job_spec`), the
spec runs through the runner's :func:`~repro.runner.jobs.invoke`
envelope on the backend (same in-worker timeout and structured-failure
semantics as a ``repro bench`` sweep), and the artifact lands in the
cache before the job's terminal transition is journaled.  That
write-artifact-then-journal order is what makes crash recovery safe:
a job requeued after a crash either finds its artifact already cached
(instant completion) or recomputes the same bytes.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ConfigurationError
from repro.guard.limits import Budgets
from repro.runner import jobs as jobs_module
from repro.runner.cache import ResultCache, encode_artifact
from repro.runner.executors import (
    ExecutorBackend,
    InlineBackend,
    ProcessPoolBackend,
    RemoteWorkerBackend,
    resolve_backend,
)
from repro.runner.pool import sweep_deadline
from repro.serve.admission import (
    DEFAULT_CAPACITY,
    DEFAULT_TENANT_QUOTA,
    AdmissionController,
    AdmissionDecision,
    split_service_params,
)
from repro.serve.kinds import build_job_spec, execute_job_spec
from repro.serve.lease import (
    DEFAULT_DEGRADED_AFTER,
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_LEASE_EXPIRIES,
    Lease,
)
from repro.serve.model import STATE_DONE, Job, JobStateError
from repro.serve.queue import (
    DEFAULT_COMPACT_AFTER,
    DEFAULT_SEGMENT_BYTES,
    JobQueue,
)
from repro.telemetry.metrics import (
    NULL_METRICS,
    MetricsRegistry,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer


class ReproService:
    """Transport-independent service core (HTTP front end separate)."""

    def __init__(self, data_dir, *,
                 cache: ResultCache | None = None,
                 executor: str | ExecutorBackend | None = None,
                 jobs: int = 1,
                 capacity: int = DEFAULT_CAPACITY,
                 tenant_quota: int = DEFAULT_TENANT_QUOTA,
                 budgets: Budgets | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 job_fn=execute_job_spec,
                 auth_token: str | None = None,
                 lease_ttl: float | None = None,
                 max_lease_expiries: int | None = None,
                 degraded_after: float | None = None,
                 segment_bytes: int | None = None,
                 compact_after: int | None = None,
                 retain_terminal: int | None = None) -> None:
        # Every fleet/journal knob treats None as "the default", so
        # the CLI can pass unset flags straight through.
        if lease_ttl is None:
            lease_ttl = DEFAULT_LEASE_TTL
        if max_lease_expiries is None:
            max_lease_expiries = DEFAULT_MAX_LEASE_EXPIRIES
        if degraded_after is None:
            degraded_after = DEFAULT_DEGRADED_AFTER
        if segment_bytes is None:
            segment_bytes = DEFAULT_SEGMENT_BYTES
        if compact_after is None:
            compact_after = DEFAULT_COMPACT_AFTER
        self.queue = JobQueue(data_dir, segment_bytes=segment_bytes,
                              compact_after=compact_after,
                              retain_terminal=retain_terminal)
        self.cache = cache if cache is not None else ResultCache()
        self.jobs = max(1, int(jobs))
        self.auth_token = auth_token or None
        self.lease_ttl = max(0.1, float(lease_ttl))
        self.max_lease_expiries = max(1, int(max_lease_expiries))
        self._owns_backend = not isinstance(executor, ExecutorBackend)
        if executor is None and self.jobs > 1 or \
                executor in ("process", "remote"):
            # The service host is threaded (asyncio loop + to_thread
            # workers), and a plain fork from a threaded process can
            # deadlock the child on locks frozen mid-operation.
            # forkserver forks workers from a clean single-threaded
            # broker instead (and unlike spawn needs no __main__
            # re-import); where unavailable the platform default is
            # already spawn.
            method = ("forkserver" if "forkserver" in
                      multiprocessing.get_all_start_methods() else None)
            local: ExecutorBackend = (
                ProcessPoolBackend(max_workers=self.jobs,
                                   mp_start_method=method)
                if self.jobs > 1 or executor == "process"
                else InlineBackend())
            if executor == "remote":
                # Fleet mode: remote workers pull jobs over HTTP; the
                # local pool is the graceful-degradation fallback.
                self.backend: ExecutorBackend = RemoteWorkerBackend(
                    fallback=local, window=degraded_after)
            else:
                self.backend = local
        else:
            self.backend = resolve_backend(executor, self.jobs)
        #: Degradation edge detector: None = never evaluated yet.
        self._was_degraded: bool | None = None
        self.admission = AdmissionController(
            capacity=capacity, tenant_quota=tenant_quota,
            budgets=budgets, workers=self.jobs)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.job_fn = job_fn
        self._epoch = time.perf_counter()

        m = self.metrics
        self._submitted = m.counter("serve_submitted")
        self._admitted = m.counter("serve_admitted")
        self._rejected = m.counter("serve_rejected")
        self._served = m.counter("serve_served")
        self._failed = m.counter("serve_failed")
        self._cache_hits = m.counter("serve_cache_hits")
        self._requeued = m.counter("serve_requeued")
        self._degraded = m.counter("serve_degraded")
        self._lease_expired = m.counter("serve_lease_expired")
        self._poisoned = m.counter("serve_poisoned")
        self._deadline_failed = m.counter("serve_deadline_failed")
        self._parity_failures = m.counter("serve_parity_failures")
        self._remote_completed = m.counter("serve_remote_completed")
        self._workers_alive = m.gauge("serve_workers_alive")
        self._depth = m.gauge("serve_queue_depth")
        self._gauge_queued = m.gauge("serve_jobs_queued")
        self._gauge_running = m.gauge("serve_jobs_running")
        self._latency = m.histogram("serve_latency_seconds")
        self._queue_wait = m.histogram("serve_queue_wait_seconds")
        #: Last-synced queue-side counter values (metrics diffing).
        self._queue_seen = {"deadline_failed": 0, "lease_expired": 0,
                            "poisoned_jobs": 0}

        self.backend.start(self.jobs)
        requeued = self.queue.recover_running()
        self._requeued.inc(len(requeued))
        self._update_gauges()

    # -- helpers --------------------------------------------------------

    def _now(self) -> float:
        return time.time()

    def _elapsed(self) -> float:
        """Seconds since service start (the serve track's clock)."""
        return time.perf_counter() - self._epoch

    def _update_gauges(self) -> None:
        counts = self.queue.counts()
        self._depth.set(counts.depth)
        self._gauge_queued.set(counts.queued)
        self._gauge_running.set(counts.running)
        for name, counter in (
                ("deadline_failed", self._deadline_failed),
                ("lease_expired", self._lease_expired),
                ("poisoned_jobs", self._poisoned)):
            current = getattr(self.queue, name)
            delta = current - self._queue_seen[name]
            if delta > 0:
                counter.inc(delta)
                self._queue_seen[name] = current

    def _spec_for(self, job_or_kind, params=None):
        if isinstance(job_or_kind, Job):
            return build_job_spec(job_or_kind.kind, job_or_kind.params)
        return build_job_spec(job_or_kind, params or {})

    # -- submission -----------------------------------------------------

    def submit(self, kind: str, params: dict | None = None,
               tenant: str = "default"
               ) -> tuple[Job | None, AdmissionDecision]:
        """Accept (or shed) one submission.

        Returns ``(job, decision)``; ``job`` is ``None`` exactly when
        the decision sheds the request.  Raises
        :class:`~repro.errors.ConfigurationError` on a malformed
        spec -- the caller's 400, distinct from the 429 shed path.
        """
        # Scheduling parameters (priority, deadline) must not reach
        # the spec: same computation => same hash => same artifact.
        params, schedule = split_service_params(dict(params or {}))
        spec = self._spec_for(kind, params)  # validates; may raise
        self._submitted.inc()
        cached = self.cache.load(spec)
        if cached is not None:
            # Answered without queue capacity or a worker: cached
            # submissions are always admitted, never shed.
            job = self.queue.submit_resolved(
                tenant, kind, params, spec.content_hash(),
                self._now(), artifact_hash=spec.content_hash())
            self._admitted.inc()
            self._cache_hits.inc()
            self._served.inc()
            self.tracer.instant("serve", f"cache-hit:{job.label()}",
                                self._elapsed(), job=job.id)
            self._update_gauges()
            return job, AdmissionDecision(admitted=True,
                                          reason="served from cache")
        decision = self.admission.check(tenant, self.queue.counts())
        if not decision.admitted:
            self._rejected.inc()
            return None, decision
        now = self._now()
        deadline_at = (now + schedule["deadline"]
                       if schedule["deadline"] is not None else None)
        job = self.queue.submit(tenant, kind, params,
                                spec.content_hash(), now,
                                priority=schedule["priority"],
                                deadline_at=deadline_at)
        self._admitted.inc()
        self._update_gauges()
        return job, decision

    # -- execution ------------------------------------------------------

    def _run_job(self, job: Job) -> Job:
        """Execute one claimed job to its terminal state."""
        started = self._elapsed()
        if job.started_at and job.submitted_at:
            self._queue_wait.observe(
                max(0.0, job.started_at - job.submitted_at))
        spec = self._spec_for(job)
        timeout = self.admission.job_timeout
        envelope = None
        try:
            cached = self.cache.load(spec)
            if cached is not None:
                # A requeued job whose first life finished the work,
                # or a duplicate spec completed since admission.
                envelope = {"ok": True, "artifact": cached,
                            "wall_time": 0.0, "from_cache": True}
            else:
                future = self.backend.submit(
                    jobs_module.invoke, self.job_fn, spec, timeout,
                    str(self.cache.root), self.cache.salt)
                deadline = sweep_deadline(timeout) if timeout else None
                envelope = future.result(timeout=deadline)
        except FutureTimeout:
            future.cancel()
            envelope = {
                "ok": False, "error_type": "JobTimeout",
                "message": f"job missed its {timeout:g}s deadline "
                           f"(serve sweep)",
                "wall_time": timeout or 0.0}
        except BrokenProcessPool:
            self.backend.restart(self.jobs)
            envelope = {
                "ok": False, "error_type": "BrokenProcessPool",
                "message": "worker process died mid-job",
                "wall_time": 0.0}
        except BaseException as error:  # noqa: BLE001 -- terminal state
            envelope = {
                "ok": False, "error_type": type(error).__name__,
                "message": str(error), "wall_time": 0.0}
        if envelope["ok"]:
            artifact = envelope["artifact"]
            if not envelope.get("from_cache"):
                # Artifact before journal: recovery can then always
                # trust a journaled "done" to have a fetchable result.
                self.cache.store(spec, artifact)
            self.queue.finish(
                job, now=self._now(),
                artifact_hash=spec.content_hash(),
                from_cache=bool(envelope.get("from_cache")))
            self._served.inc()
        else:
            self.queue.finish(
                job, now=self._now(),
                error=f"{envelope['error_type']}: "
                      f"{envelope['message']}")
            self._failed.inc()
        elapsed = self._elapsed() - started
        self._latency.observe(elapsed)
        self.admission.observe_latency(elapsed)
        self.tracer.span("serve", job.label(), started, elapsed,
                         job=job.id, ok=envelope["ok"],
                         from_cache=bool(envelope.get("from_cache")))
        self._update_gauges()
        return job

    def process_one(self) -> Job | None:
        """Claim and run the next queued job (worker loop body).

        In fleet mode the local loop claims **only while the fleet is
        degraded** -- remote workers own the queue whenever at least
        one of them is heartbeating; the moment none is, this becomes
        the process-pool (or inline) fallback path.
        """
        if self.fleet and not self.fleet_degraded():
            return None
        job = self.queue.claim(self._now())
        if job is None:
            return None
        self._update_gauges()
        return self._run_job(job)

    def run_until_idle(self) -> int:
        """Drain the queue synchronously; returns jobs processed.

        The test and CLI convenience path (``repro submit --wait``
        against an in-process service); the HTTP server runs
        :meth:`process_one` from async worker tasks instead.
        """
        processed = 0
        while self.process_one() is not None:
            processed += 1
        return processed

    # -- the worker fleet -----------------------------------------------

    @property
    def fleet(self) -> RemoteWorkerBackend | None:
        """The remote backend, or ``None`` outside fleet mode."""
        backend = self.backend
        return backend if isinstance(backend, RemoteWorkerBackend) \
            else None

    def fleet_degraded(self, now: float | None = None) -> bool:
        """Whether the local fallback should claim jobs right now.

        Also the degradation edge detector: each ``False -> True``
        transition (including the initial "no worker ever showed up")
        bumps the ``serve_degraded`` counter.  Recovery is automatic
        and silent -- any worker contact flips this back.
        """
        fleet = self.fleet
        if fleet is None:
            return True  # local backends always execute locally
        now = self._now() if now is None else now
        degraded = fleet.degraded(now)
        if degraded and self._was_degraded is not True:
            self._degraded.inc()
            self.tracer.instant("serve", "fleet-degraded",
                                self._elapsed())
        self._was_degraded = degraded
        return degraded

    def claim_remote(self, worker: str,
                     lease_ttl: float | None = None
                     ) -> tuple[Job | None, Lease | None]:
        """One worker's claim: pop a job under a journaled lease.

        Returns ``(job, lease)`` -- both ``None`` when the queue has
        nothing claimable.  The contact alone marks the fleet healthy.
        """
        fleet = self._require_fleet()
        now = self._now()
        fleet.touch_worker(worker, now)
        self.fleet_degraded(now)
        job = self.queue.claim(now, worker=worker,
                               lease_ttl=lease_ttl or self.lease_ttl)
        self._update_gauges()
        if job is None:
            return None, None
        self.tracer.instant("serve", f"claim:{job.label()}",
                            self._elapsed(), job=job.id,
                            worker=worker)
        return job, Lease.for_job(job)

    def heartbeat_remote(self, worker: str, job_id: str,
                         lease_id: str) -> Lease | None:
        """Renew a lease; ``None`` means the lease was lost."""
        fleet = self._require_fleet()
        now = self._now()
        fleet.touch_worker(worker, now)
        self.fleet_degraded(now)
        job = self.queue.heartbeat(job_id, worker, lease_id, now)
        return Lease.for_job(job) if job is not None else None

    def complete_remote(self, worker: str, job_id: str,
                        lease_id: str, envelope: dict,
                        artifact_digest: str | None = None) -> dict:
        """Accept one uploaded completion, exactly once, verified.

        The parity contract is checked *before* the terminal journal
        entry: the upload must hash to ``artifact_digest`` (transport
        integrity), must name the job's recomputed spec hash, and must
        be byte-identical to any artifact already cached for that spec
        (a remote worker and a local run of the same spec are the same
        computation).  A verified duplicate -- the job already
        terminal with the same artifact -- is acknowledged without a
        second journal entry; an upload failing parity requeues the
        job (counting toward poison) and reports ``rejected``.

        Returns ``{"status": ..., "job": ...}`` with status one of
        ``ok`` / ``duplicate`` / ``unknown`` / ``stale`` /
        ``rejected``.
        """
        fleet = self._require_fleet()
        now = self._now()
        fleet.touch_worker(worker, now)
        self.fleet_degraded(now)
        job = self.queue.get(job_id)
        if job is None:
            return {"status": "unknown", "job": None}
        started = self._elapsed()
        spec = self._spec_for(job)
        if envelope.get("ok"):
            artifact = envelope.get("artifact")
            problem = self._verify_parity(spec, artifact,
                                          artifact_digest)
            if job.terminal:
                duplicate = (problem is None
                             and job.state == STATE_DONE
                             and job.artifact_hash
                             == spec.content_hash())
                return {"status": "duplicate" if duplicate
                        else "stale", "job": job.as_dict()}
            if problem is not None:
                # Parity failure: the upload is not the computation
                # the spec names.  Take the job back (counts toward
                # poison) rather than journal a lie.
                self._parity_failures.inc()
                if job.leased:
                    self.queue.punt(
                        job_id, now,
                        max_expiries=self.max_lease_expiries)
                self._update_gauges()
                return {"status": "rejected", "reason": problem,
                        "job": job.as_dict()}
            # Artifact before journal, exactly as the local path.
            self.cache.store(spec, artifact)
            try:
                self.queue.finish(job, now=now,
                                  artifact_hash=spec.content_hash())
            except JobStateError:
                # Lost a completion race; the winner journaled it.
                return {"status": "duplicate", "job": job.as_dict()}
            self._served.inc()
            self._remote_completed.inc()
        else:
            if job.terminal:
                return {"status": "stale", "job": job.as_dict()}
            if not (job.leased and job.lease_id == lease_id
                    and job.worker == worker):
                # Only the current lease holder may fail a job: a
                # stale worker's failure must not clobber a retry in
                # flight elsewhere.
                return {"status": "stale", "job": job.as_dict()}
            error_type = envelope.get("error_type", "RemoteFailure")
            message = envelope.get("message", "")
            self.queue.finish(
                job, now=now, error=f"{error_type}: {message}",
                failure={"type": "remote", "worker": worker,
                         "error_type": error_type,
                         "message": message,
                         "wall_time": envelope.get("wall_time", 0.0)})
            self._failed.inc()
        elapsed = self._elapsed() - started
        self._latency.observe(elapsed)
        self.admission.observe_latency(
            max(elapsed, envelope.get("wall_time", 0.0) or elapsed))
        self.tracer.span("serve", f"remote:{job.label()}", started,
                         elapsed, job=job.id, worker=worker,
                         ok=bool(envelope.get("ok")))
        self._update_gauges()
        return {"status": "ok", "job": job.as_dict()}

    def _verify_parity(self, spec, artifact,
                       artifact_digest: str | None) -> str | None:
        """The parity contract, as a reason string (None = verified)."""
        if not isinstance(artifact, dict):
            return "artifact must be a JSON object"
        blob = encode_artifact(artifact)
        if artifact_digest is not None:
            digest = hashlib.sha256(blob).hexdigest()
            if digest != artifact_digest:
                return (f"artifact digest mismatch (got "
                        f"{digest[:12]}..., declared "
                        f"{str(artifact_digest)[:12]}...)")
        if artifact.get("spec_hash") != spec.content_hash():
            return (f"artifact names spec "
                    f"{str(artifact.get('spec_hash'))[:12]}..., "
                    f"job resolves to "
                    f"{spec.content_hash()[:12]}...")
        cached = self.cache.load(spec)
        if cached is not None and encode_artifact(cached) != blob:
            return ("artifact bytes differ from the cached result "
                    "of the same spec (parity contract violation)")
        return None

    def sweep_leases(self, now: float | None = None
                     ) -> tuple[list[Job], list[Job]]:
        """The periodic fleet sweep: expire leases, refresh gauges.

        Returns ``(requeued, poisoned)``.  Harmless outside fleet
        mode (no leases ever exist to expire).
        """
        now = self._now() if now is None else now
        requeued, poisoned = self.queue.expire_leases(
            now, max_expiries=self.max_lease_expiries)
        self._requeued.inc(len(requeued))
        self._failed.inc(len(poisoned))
        fleet = self.fleet
        if fleet is not None:
            self._workers_alive.set(len(fleet.workers(now)))
            self.fleet_degraded(now)
        self._update_gauges()
        return requeued, poisoned

    def _require_fleet(self) -> RemoteWorkerBackend:
        fleet = self.fleet
        if fleet is None:
            raise ConfigurationError(
                "this server is not running a remote worker fleet "
                "(start it with --executor remote)")
        return fleet

    # -- queries --------------------------------------------------------

    def artifact(self, artifact_hash: str) -> dict | None:
        """Fetch a stored artifact by content hash."""
        return self.cache.load_by_hash(artifact_hash)

    def stats(self) -> dict:
        """Service census: queue, journal, fleet, admission, cache,
        and the ``serve_*`` metrics."""
        now = self._now()
        fleet = self.fleet
        return {
            "queue": self.queue.counts().as_dict(),
            "journal": {
                "recovered_jobs": self.queue.recovered_jobs,
                "requeued_jobs": self.queue.requeued_jobs,
                "truncated_bytes": self.queue.truncated_bytes,
                **self.queue.journal_stats(),
            },
            "fleet": {
                "remote": fleet is not None,
                "degraded": (fleet.degraded(now)
                             if fleet is not None else False),
                "workers": (fleet.workers(now)
                            if fleet is not None else []),
                "lease_ttl": self.lease_ttl,
                "max_lease_expiries": self.max_lease_expiries,
                "leases": self.queue.lease_census(now),
                "deadline_failed": self.queue.deadline_failed,
                "lease_expired": self.queue.lease_expired,
                "poisoned_jobs": self.queue.poisoned_jobs,
            },
            "admission": {
                "capacity": self.admission.capacity,
                "tenant_quota": self.admission.tenant_quota,
                "job_timeout": self.admission.job_timeout,
                "mean_latency": self.admission.mean_latency(),
            },
            "backend": {"name": self.backend.name,
                        "parallel": self.backend.parallel,
                        "workers": self.jobs},
            "cache": self.cache.counters(),
            "metrics": self.metrics.as_dict(prefix="serve_"),
        }

    def close(self) -> None:
        """Shut down the backend (if owned) and the journal handle."""
        if self._owns_backend:
            self.backend.shutdown(wait=True, cancel_futures=True)
        self.queue.close()


__all__ = ["ReproService"]
