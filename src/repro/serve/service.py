"""The record/replay service: queue + cache + executor + telemetry.

:class:`ReproService` is the transport-independent core behind
``repro serve``.  It owns

* the durable :class:`~repro.serve.queue.JobQueue` (accepted work
  survives any crash),
* the content-addressed :class:`~repro.runner.cache.ResultCache`
  (identical submissions are answered without recomputation, and
  artifacts are fetchable by hash),
* a pluggable :class:`~repro.runner.executors.ExecutorBackend`
  (inline for tests and tiny deployments, a process pool for real
  parallelism -- byte-identical artifacts either way),
* :class:`~repro.serve.admission.AdmissionController` (bounded depth,
  per-tenant quotas, guard-budget job timeouts), and
* ``serve_*`` telemetry on the shared
  :class:`~repro.telemetry.metrics.MetricsRegistry` plus a ``serve``
  Perfetto track on an optional
  :class:`~repro.telemetry.tracer.Tracer`.

Execution path: a claimed job's ``(kind, params)`` resolve to a
content-hashed spec (:func:`~repro.serve.kinds.build_job_spec`), the
spec runs through the runner's :func:`~repro.runner.jobs.invoke`
envelope on the backend (same in-worker timeout and structured-failure
semantics as a ``repro bench`` sweep), and the artifact lands in the
cache before the job's terminal transition is journaled.  That
write-artifact-then-journal order is what makes crash recovery safe:
a job requeued after a crash either finds its artifact already cached
(instant completion) or recomputes the same bytes.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool

from repro.guard.limits import Budgets
from repro.runner import jobs as jobs_module
from repro.runner.cache import ResultCache
from repro.runner.executors import (
    ExecutorBackend,
    ProcessPoolBackend,
    resolve_backend,
)
from repro.runner.pool import sweep_deadline
from repro.serve.admission import (
    DEFAULT_CAPACITY,
    DEFAULT_TENANT_QUOTA,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.kinds import build_job_spec, execute_job_spec
from repro.serve.model import Job
from repro.serve.queue import JobQueue
from repro.telemetry.metrics import (
    NULL_METRICS,
    MetricsRegistry,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer


class ReproService:
    """Transport-independent service core (HTTP front end separate)."""

    def __init__(self, data_dir, *,
                 cache: ResultCache | None = None,
                 executor: str | ExecutorBackend | None = None,
                 jobs: int = 1,
                 capacity: int = DEFAULT_CAPACITY,
                 tenant_quota: int = DEFAULT_TENANT_QUOTA,
                 budgets: Budgets | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 job_fn=execute_job_spec) -> None:
        self.queue = JobQueue(data_dir)
        self.cache = cache if cache is not None else ResultCache()
        self.jobs = max(1, int(jobs))
        self._owns_backend = not isinstance(executor, ExecutorBackend)
        if executor is None and self.jobs > 1 or executor == "process":
            # The service host is threaded (asyncio loop + to_thread
            # workers), and a plain fork from a threaded process can
            # deadlock the child on locks frozen mid-operation.
            # forkserver forks workers from a clean single-threaded
            # broker instead (and unlike spawn needs no __main__
            # re-import); where unavailable the platform default is
            # already spawn.
            method = ("forkserver" if "forkserver" in
                      multiprocessing.get_all_start_methods() else None)
            self.backend: ExecutorBackend = ProcessPoolBackend(
                max_workers=self.jobs, mp_start_method=method)
        else:
            self.backend = resolve_backend(executor, self.jobs)
        self.admission = AdmissionController(
            capacity=capacity, tenant_quota=tenant_quota,
            budgets=budgets, workers=self.jobs)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.job_fn = job_fn
        self._epoch = time.perf_counter()

        m = self.metrics
        self._submitted = m.counter("serve_submitted")
        self._admitted = m.counter("serve_admitted")
        self._rejected = m.counter("serve_rejected")
        self._served = m.counter("serve_served")
        self._failed = m.counter("serve_failed")
        self._cache_hits = m.counter("serve_cache_hits")
        self._requeued = m.counter("serve_requeued")
        self._depth = m.gauge("serve_queue_depth")
        self._gauge_queued = m.gauge("serve_jobs_queued")
        self._gauge_running = m.gauge("serve_jobs_running")
        self._latency = m.histogram("serve_latency_seconds")
        self._queue_wait = m.histogram("serve_queue_wait_seconds")

        self.backend.start(self.jobs)
        requeued = self.queue.recover_running()
        self._requeued.inc(len(requeued))
        self._update_gauges()

    # -- helpers --------------------------------------------------------

    def _now(self) -> float:
        return time.time()

    def _elapsed(self) -> float:
        """Seconds since service start (the serve track's clock)."""
        return time.perf_counter() - self._epoch

    def _update_gauges(self) -> None:
        counts = self.queue.counts()
        self._depth.set(counts.depth)
        self._gauge_queued.set(counts.queued)
        self._gauge_running.set(counts.running)

    def _spec_for(self, job_or_kind, params=None):
        if isinstance(job_or_kind, Job):
            return build_job_spec(job_or_kind.kind, job_or_kind.params)
        return build_job_spec(job_or_kind, params or {})

    # -- submission -----------------------------------------------------

    def submit(self, kind: str, params: dict | None = None,
               tenant: str = "default"
               ) -> tuple[Job | None, AdmissionDecision]:
        """Accept (or shed) one submission.

        Returns ``(job, decision)``; ``job`` is ``None`` exactly when
        the decision sheds the request.  Raises
        :class:`~repro.errors.ConfigurationError` on a malformed
        spec -- the caller's 400, distinct from the 429 shed path.
        """
        params = dict(params or {})
        spec = self._spec_for(kind, params)  # validates; may raise
        self._submitted.inc()
        cached = self.cache.load(spec)
        if cached is not None:
            # Answered without queue capacity or a worker: cached
            # submissions are always admitted, never shed.
            job = self.queue.submit_resolved(
                tenant, kind, params, spec.content_hash(),
                self._now(), artifact_hash=spec.content_hash())
            self._admitted.inc()
            self._cache_hits.inc()
            self._served.inc()
            self.tracer.instant("serve", f"cache-hit:{job.label()}",
                                self._elapsed(), job=job.id)
            self._update_gauges()
            return job, AdmissionDecision(admitted=True,
                                          reason="served from cache")
        decision = self.admission.check(tenant, self.queue.counts())
        if not decision.admitted:
            self._rejected.inc()
            return None, decision
        job = self.queue.submit(tenant, kind, params,
                                spec.content_hash(), self._now())
        self._admitted.inc()
        self._update_gauges()
        return job, decision

    # -- execution ------------------------------------------------------

    def _run_job(self, job: Job) -> Job:
        """Execute one claimed job to its terminal state."""
        started = self._elapsed()
        if job.started_at and job.submitted_at:
            self._queue_wait.observe(
                max(0.0, job.started_at - job.submitted_at))
        spec = self._spec_for(job)
        timeout = self.admission.job_timeout
        envelope = None
        try:
            cached = self.cache.load(spec)
            if cached is not None:
                # A requeued job whose first life finished the work,
                # or a duplicate spec completed since admission.
                envelope = {"ok": True, "artifact": cached,
                            "wall_time": 0.0, "from_cache": True}
            else:
                future = self.backend.submit(
                    jobs_module.invoke, self.job_fn, spec, timeout,
                    str(self.cache.root), self.cache.salt)
                deadline = sweep_deadline(timeout) if timeout else None
                envelope = future.result(timeout=deadline)
        except FutureTimeout:
            future.cancel()
            envelope = {
                "ok": False, "error_type": "JobTimeout",
                "message": f"job missed its {timeout:g}s deadline "
                           f"(serve sweep)",
                "wall_time": timeout or 0.0}
        except BrokenProcessPool:
            self.backend.restart(self.jobs)
            envelope = {
                "ok": False, "error_type": "BrokenProcessPool",
                "message": "worker process died mid-job",
                "wall_time": 0.0}
        except BaseException as error:  # noqa: BLE001 -- terminal state
            envelope = {
                "ok": False, "error_type": type(error).__name__,
                "message": str(error), "wall_time": 0.0}
        if envelope["ok"]:
            artifact = envelope["artifact"]
            if not envelope.get("from_cache"):
                # Artifact before journal: recovery can then always
                # trust a journaled "done" to have a fetchable result.
                self.cache.store(spec, artifact)
            self.queue.finish(
                job, now=self._now(),
                artifact_hash=spec.content_hash(),
                from_cache=bool(envelope.get("from_cache")))
            self._served.inc()
        else:
            self.queue.finish(
                job, now=self._now(),
                error=f"{envelope['error_type']}: "
                      f"{envelope['message']}")
            self._failed.inc()
        elapsed = self._elapsed() - started
        self._latency.observe(elapsed)
        self.admission.observe_latency(elapsed)
        self.tracer.span("serve", job.label(), started, elapsed,
                         job=job.id, ok=envelope["ok"],
                         from_cache=bool(envelope.get("from_cache")))
        self._update_gauges()
        return job

    def process_one(self) -> Job | None:
        """Claim and run the next queued job (worker loop body)."""
        job = self.queue.claim(self._now())
        if job is None:
            return None
        self._update_gauges()
        return self._run_job(job)

    def run_until_idle(self) -> int:
        """Drain the queue synchronously; returns jobs processed.

        The test and CLI convenience path (``repro submit --wait``
        against an in-process service); the HTTP server runs
        :meth:`process_one` from async worker tasks instead.
        """
        processed = 0
        while self.process_one() is not None:
            processed += 1
        return processed

    # -- queries --------------------------------------------------------

    def artifact(self, artifact_hash: str) -> dict | None:
        """Fetch a stored artifact by content hash."""
        return self.cache.load_by_hash(artifact_hash)

    def stats(self) -> dict:
        """Service census: queue, admission, cache, serve_* metrics."""
        serve_metrics = {
            name: value for name, value in
            self.metrics.as_dict().items()
            if name.startswith("serve_")}
        return {
            "queue": self.queue.counts().as_dict(),
            "journal": {
                "lsn": self.queue.lsn,
                "recovered_jobs": self.queue.recovered_jobs,
                "requeued_jobs": self.queue.requeued_jobs,
                "truncated_bytes": self.queue.truncated_bytes,
            },
            "admission": {
                "capacity": self.admission.capacity,
                "tenant_quota": self.admission.tenant_quota,
                "job_timeout": self.admission.job_timeout,
                "mean_latency": self.admission.mean_latency(),
            },
            "backend": {"name": self.backend.name,
                        "parallel": self.backend.parallel,
                        "workers": self.jobs},
            "cache": self.cache.counters(),
            "metrics": serve_metrics,
        }

    def close(self) -> None:
        """Shut down the backend (if owned) and the journal handle."""
        if self._owns_backend:
            self.backend.shutdown(wait=True, cancel_futures=True)
        self.queue.close()


__all__ = ["ReproService"]
