"""The serve layer's job model: states, transitions, wire form.

A :class:`Job` is one unit of service traffic: a submitted request to
run something the runner knows how to execute (a recording, a replay,
a chaos campaign, a salvage pass, a bench snapshot, ...).  Its life is
a small state machine::

    queued ──> running ──> done
       │          │   └──> failed
       │          └──> queued        (requeued after a server crash
       │                              or an expired worker lease)
       ├─────────> done              (answered from the result cache)
       └─────────> failed            (deadline passed before claim,
                                      or poison after repeated leases)

``done`` and ``failed`` are terminal.  The *only* backward edge is
``running -> queued``: a job that was mid-execution when the server
died -- or whose remote worker's lease expired -- is requeued, safe
because every job kind is a pure function of its content-hashed spec
and results land in the content-addressed cache, so re-execution is
idempotent (at worst the rerun is answered by the artifact the dead
process already stored).

Remote execution attaches a *lease* to the ``running`` state: the
claiming worker's identity, an opaque lease id, and an expiry the
worker must keep renewing by heartbeat.  Lease fields are part of the
journaled snapshot (the claim is durable before the worker sees the
job); heartbeat renewals move the in-memory expiry only -- recovery
re-arms a leased job's expiry from the journaled TTL, so a restarted
server gives a still-live worker one full TTL to re-announce itself
before requeueing.

Jobs serialize to flat JSON dictionaries -- the durable queue journal
appends full job snapshots (newest wins on recovery), and the same
dictionaries travel the HTTP API and the SSE stream unchanged.
:meth:`Job.from_dict` ignores unknown keys so older code can read a
journal written by a newer schema's snapshots.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from repro.errors import ConfigurationError

#: Job lifecycle states.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"

STATES = (STATE_QUEUED, STATE_RUNNING, STATE_DONE, STATE_FAILED)

#: States a job never leaves.
TERMINAL_STATES = frozenset({STATE_DONE, STATE_FAILED})

#: Legal state-machine edges (see the module docstring).
TRANSITIONS = {
    STATE_QUEUED: frozenset({STATE_RUNNING, STATE_DONE, STATE_FAILED}),
    STATE_RUNNING: frozenset({STATE_DONE, STATE_FAILED, STATE_QUEUED}),
    STATE_DONE: frozenset(),
    STATE_FAILED: frozenset(),
}


class JobStateError(ConfigurationError):
    """An illegal job state transition was attempted."""


@dataclass
class Job:
    """One submitted job and its full current state.

    ``seq`` is the acceptance sequence number (queue order and the
    tiebreak of the job id); ``spec_hash`` is the content hash of the
    underlying spec -- also the address of the result artifact in the
    cache.  Timestamps are wall-clock (``time.time``), recorded by the
    server.
    """

    id: str
    seq: int
    tenant: str
    kind: str
    params: dict
    spec_hash: str
    state: str = STATE_QUEUED
    attempts: int = 0
    requeues: int = 0
    from_cache: bool = False
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    artifact_hash: str | None = None
    error: str | None = None
    #: Scheduling: lower priorities claim first; ties break on seq.
    priority: int = 0
    #: Absolute wall-clock deadline; past it the job fails at claim
    #: time instead of wasting a worker.
    deadline_at: float | None = None
    #: Remote-execution lease (None for locally executed jobs).
    worker: str | None = None
    lease_id: str | None = None
    lease_expires_at: float | None = None
    lease_ttl: float | None = None
    #: How many leases on this job have expired (poison detection).
    lease_expiries: int = 0
    #: Structured terminal-failure record (deadline, poison, parity).
    failure: dict | None = None

    @property
    def terminal(self) -> bool:
        """Whether the job has reached a final state."""
        return self.state in TERMINAL_STATES

    @property
    def leased(self) -> bool:
        """Whether a remote worker currently holds this job."""
        return self.state == STATE_RUNNING and self.lease_id is not None

    def grant_lease(self, worker: str, lease_id: str, ttl: float,
                    now: float) -> None:
        """Attach a worker lease (call at the claim transition)."""
        self.worker = worker
        self.lease_id = lease_id
        self.lease_ttl = ttl
        self.lease_expires_at = now + ttl

    def clear_lease(self) -> None:
        """Drop the lease (requeue, completion, or poison)."""
        self.lease_id = None
        self.lease_expires_at = None
        self.lease_ttl = None

    def transition(self, state: str) -> None:
        """Move to ``state``, enforcing the state machine."""
        if state not in STATES:
            raise JobStateError(f"unknown job state {state!r}")
        if state not in TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.id}: illegal transition "
                f"{self.state} -> {state}")
        if state == STATE_QUEUED:  # the requeue edge
            self.requeues += 1
            self.started_at = None
            self.clear_lease()
        self.state = state

    def label(self) -> str:
        """Short human-readable label for logs and traces."""
        app = self.params.get("app", "")
        return f"{self.kind}:{app}" if app else self.kind

    def as_dict(self) -> dict:
        """The flat JSON wire form (journal, HTTP, SSE)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        """Invert :meth:`as_dict` (journal recovery).

        Unknown keys are dropped so a journal written by a newer
        schema still recovers under this one.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in known})


def job_id(seq: int, spec_hash: str) -> str:
    """Stable job id: acceptance order plus the spec it names."""
    return f"j{seq:06d}-{spec_hash[:12]}"


@dataclass
class QueueCounts:
    """Point-in-time census of job states (queue-depth gauges)."""

    queued: int = 0
    running: int = 0
    done: int = 0
    failed: int = 0
    by_tenant: dict = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """Non-terminal jobs: what admission control bounds."""
        return self.queued + self.running

    def as_dict(self) -> dict:
        return {"queued": self.queued, "running": self.running,
                "done": self.done, "failed": self.failed,
                "depth": self.depth,
                "by_tenant": dict(self.by_tenant)}


def census(jobs) -> QueueCounts:
    """Count jobs by state and non-terminal jobs by tenant."""
    counts = QueueCounts()
    for job in jobs:
        setattr(counts, job.state,
                getattr(counts, job.state) + 1)
        if not job.terminal:
            counts.by_tenant[job.tenant] = \
                counts.by_tenant.get(job.tenant, 0) + 1
    return counts


__all__ = [
    "Job",
    "JobStateError",
    "QueueCounts",
    "STATES",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "census",
    "job_id",
]
