"""Asyncio HTTP/1.1 front end for the record/replay service.

Stdlib only (``asyncio.start_server`` + hand-rolled request parsing --
no framework dependency), one short-lived connection per request
(``Connection: close``) except the SSE streams, which stay open until
the watched job reaches a terminal state (or forever, for the global
feed).

Routes::

    GET  /healthz                 liveness + journal lsn
    POST /v1/jobs                 submit {"kind", "params", "tenant"}
                                  -> 202 job | 400 bad spec
                                  -> 429 + Retry-After when shed
    GET  /v1/jobs                 job listing (?tenant=&state=)
    GET  /v1/jobs/<id>            one job snapshot
    GET  /v1/jobs/<id>/events     SSE stream of that job's transitions
    GET  /v1/events               SSE stream of every transition
    GET  /v1/artifacts/<hash>     artifact fetch by content hash
    GET  /v1/stats                queue/fleet/admission/cache census
    GET  /v1/workers              fleet census (liveness, leases)
    POST /v1/workers/claim        {"worker"} -> job + lease | job:null
    POST /v1/workers/heartbeat    {"worker","job_id","lease_id"}
                                  -> lease | 409 lease lost
    POST /v1/workers/complete     {"worker","job_id","lease_id",
                                   "envelope","artifact_digest"}
                                  -> verified completion | 409/404

The worker endpoints are the fleet wire protocol (see
:mod:`repro.serve.worker` for the peer).  When the service carries a
shared-secret bearer token, submissions and every worker call must
present ``Authorization: Bearer <token>`` -- compared constant-time,
rejected 401 with no detail about which part was wrong.

SSE event ids are journal log sequence numbers; reconnecting with
``Last-Event-ID: N`` (or ``?after=N``) replays everything after N --
including transitions journaled by a *previous* server process,
because the event log is seeded from every recovered journal segment.
A cursor older than the journal's ``compacted_through`` LSN can no
longer be resumed exactly (compaction dissolved those events) and is
answered with the full retained snapshot instead of a silent gap.

Job execution happens on worker tasks (one per configured worker)
that pull from the durable queue through ``asyncio.to_thread``, so a
long simulation never blocks the accept loop: submissions, listings
and streams stay responsive while jobs run.  In fleet mode those
tasks idle while remote workers are heartbeating and take over
automatically when none is (graceful degradation); a once-a-second
sweeper task expires abandoned leases either way.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import signal
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigurationError
from repro.serve.lease import heartbeat_interval
from repro.serve.model import Job
from repro.serve.queue import read_journal_dir
from repro.serve.service import ReproService
from repro.serve.sse import EventLog, format_sse

_MAX_BODY = 1 << 20  # 1 MiB: job submissions are tiny

#: How often the server sweeps expired leases.
SWEEP_INTERVAL = 1.0

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request",
    401: "Unauthorized", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error",
}


def _json_body(status: int, payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode()


class ServeServer:
    """Bind a :class:`ReproService` to a TCP port."""

    def __init__(self, service: ReproService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.events: EventLog | None = None
        self._server: asyncio.AbstractServer | None = None
        self._workers: list[asyncio.Task] = []
        self._stopping = asyncio.Event()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind, seed the event log, launch worker + sweeper tasks."""
        loop = asyncio.get_running_loop()
        # Seed from every journal segment so SSE resume spans restarts
        # (and compactions), then attach live; the lsn guard in
        # EventLog dedupes any transition that lands in between.
        records, compacted = read_journal_dir(
            self.service.queue.data_dir)
        self.events = EventLog(loop, compacted_through=compacted)
        for record in records:
            self.events.seed(record["lsn"],
                             Job.from_dict(record["job"]))
        self.service.queue.subscribe(self.events.append)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        for index in range(self.service.jobs):
            self._workers.append(
                loop.create_task(self._worker(index)))
        self._workers.append(loop.create_task(self._sweeper()))

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self.service.close()

    async def _worker(self, index: int) -> None:
        """Pull-and-run loop; the 20ms idle nap bounds poll cost."""
        while not self._stopping.is_set():
            job = await asyncio.to_thread(self.service.process_one)
            if job is None:
                await asyncio.sleep(0.02)

    async def _sweeper(self) -> None:
        """Expire abandoned leases and refresh the SSE compaction
        horizon once a second."""
        while not self._stopping.is_set():
            await asyncio.sleep(SWEEP_INTERVAL)
            await asyncio.to_thread(self.service.sweep_leases)
            if self.events is not None:
                self.events.compacted_through = max(
                    self.events.compacted_through,
                    self.service.queue.compacted_through)

    # -- request plumbing -----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            await self._dispatch(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as error:  # noqa: BLE001 -- 500, not a crash
            try:
                await self._respond(writer, 500, {
                    "error": f"{type(error).__name__}: {error}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, reader, writer) -> None:
        request_line = (await reader.readline()).decode("latin-1")
        if not request_line.strip():
            return
        try:
            method, target, _version = request_line.split(None, 2)
        except ValueError:
            await self._respond(writer, 400,
                                {"error": "malformed request line"})
            return
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            await self._respond(writer, 413,
                                {"error": "request body too large"})
            return
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = {key: values[-1] for key, values in
                 parse_qs(parts.query).items()}
        await self._route(writer, method.upper(), path, query,
                          headers, body)

    async def _respond(self, writer, status: int, payload: dict,
                       extra_headers: dict | None = None) -> None:
        body = _json_body(status, payload)
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode())
        writer.write(body)
        await writer.drain()

    # -- routing --------------------------------------------------------

    def _authorized(self, headers: dict) -> bool:
        """Constant-time bearer-token check (True when auth is off)."""
        token = self.service.auth_token
        if not token:
            return True
        provided = headers.get("authorization", "")
        if provided[:7].lower() == "bearer ":
            provided = provided[7:].strip()
        return hmac.compare_digest(provided.encode(), token.encode())

    async def _reject_unauthorized(self, writer) -> None:
        # Deliberately detail-free: no hint whether the token was
        # missing, malformed, or wrong.
        await self._respond(writer, 401, {"error": "unauthorized"},
                            extra_headers={"WWW-Authenticate":
                                           "Bearer"})

    async def _route(self, writer, method, path, query, headers,
                     body) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, {
                "ok": True, "lsn": self.service.queue.lsn})
            return
        if path == "/v1/workers" or path.startswith("/v1/workers/"):
            await self._route_workers(writer, method, path, headers,
                                      body)
            return
        if path == "/v1/jobs":
            if method == "POST":
                if not self._authorized(headers):
                    await self._reject_unauthorized(writer)
                    return
                await self._submit(writer, body)
            elif method == "GET":
                jobs = self.service.queue.jobs(
                    tenant=query.get("tenant"),
                    state=query.get("state"))
                await self._respond(writer, 200, {
                    "jobs": [job.as_dict() for job in jobs]})
            else:
                await self._respond(writer, 405,
                                    {"error": "use GET or POST"})
            return
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                await self._stream_job(writer, rest[:-len("/events")],
                                       query, headers)
            else:
                job = self.service.queue.get(rest)
                if job is None:
                    await self._respond(writer, 404, {
                        "error": f"no job {rest!r}"})
                else:
                    await self._respond(writer, 200, job.as_dict())
            return
        if path == "/v1/events" and method == "GET":
            await self._stream_all(writer, query, headers)
            return
        if path.startswith("/v1/artifacts/") and method == "GET":
            artifact_hash = path[len("/v1/artifacts/"):]
            artifact = self.service.artifact(artifact_hash)
            if artifact is None:
                await self._respond(writer, 404, {
                    "error": f"no artifact {artifact_hash[:12]}..."})
            else:
                await self._respond(writer, 200, artifact)
            return
        if path == "/v1/stats" and method == "GET":
            await self._respond(writer, 200, self.service.stats())
            return
        await self._respond(writer, 404,
                            {"error": f"no route {method} {path}"})

    async def _submit(self, writer, body: bytes) -> None:
        try:
            request = json.loads(body.decode() or "{}")
            if not isinstance(request, dict):
                raise ValueError("body must be a JSON object")
            kind = request.get("kind", "")
            params = request.get("params") or {}
            tenant = str(request.get("tenant") or "default")
        except (ValueError, UnicodeDecodeError) as error:
            await self._respond(writer, 400, {"error": str(error)})
            return
        try:
            job, decision = await asyncio.to_thread(
                self.service.submit, kind, params, tenant)
        except ConfigurationError as error:
            await self._respond(writer, 400, {"error": str(error)})
            return
        if job is None:
            await self._respond(
                writer, 429,
                {"error": decision.reason,
                 "retry_after": decision.retry_after},
                extra_headers={
                    "Retry-After":
                        str(max(1, int(decision.retry_after + 0.5)))})
            return
        await self._respond(writer, 202, job.as_dict())

    # -- the fleet wire protocol ----------------------------------------

    async def _route_workers(self, writer, method, path, headers,
                             body) -> None:
        """claim / heartbeat / complete / census -- all token-gated."""
        if not self._authorized(headers):
            await self._reject_unauthorized(writer)
            return
        if path == "/v1/workers" and method == "GET":
            now = self.service._now()
            fleet = self.service.fleet
            await self._respond(writer, 200, {
                "remote": fleet is not None,
                "degraded": (fleet.degraded(now)
                             if fleet is not None else False),
                "workers": (fleet.workers(now)
                            if fleet is not None else []),
                "leases": self.service.queue.lease_census(now)})
            return
        if method != "POST":
            await self._respond(writer, 405, {"error": "use POST"})
            return
        try:
            request = json.loads(body.decode() or "{}")
            if not isinstance(request, dict):
                raise ValueError("body must be a JSON object")
            worker = str(request.get("worker") or "")
            if not worker:
                raise ValueError("missing worker id")
        except (ValueError, UnicodeDecodeError) as error:
            await self._respond(writer, 400, {"error": str(error)})
            return
        action = path[len("/v1/workers/"):]
        try:
            if action == "claim":
                await self._claim(writer, worker, request)
            elif action == "heartbeat":
                await self._heartbeat(writer, worker, request)
            elif action == "complete":
                await self._complete(writer, worker, request)
            else:
                await self._respond(writer, 404, {
                    "error": f"no worker action {action!r}"})
        except ConfigurationError as error:
            # Not a fleet server (or a malformed request deeper in).
            await self._respond(writer, 409, {"error": str(error)})

    async def _claim(self, writer, worker: str, request) -> None:
        lease_ttl = request.get("lease_ttl")
        job, lease = await asyncio.to_thread(
            self.service.claim_remote, worker,
            float(lease_ttl) if lease_ttl else None)
        if job is None:
            await self._respond(writer, 200, {"job": None})
            return
        await self._respond(writer, 200, {
            "job": job.as_dict(),
            "lease": lease.as_dict(),
            "heartbeat_interval": heartbeat_interval(lease.ttl),
            "timeout": self.service.admission.job_timeout})

    async def _heartbeat(self, writer, worker: str, request) -> None:
        lease = await asyncio.to_thread(
            self.service.heartbeat_remote, worker,
            str(request.get("job_id") or ""),
            str(request.get("lease_id") or ""))
        if lease is None:
            await self._respond(writer, 409, {"error": "lease lost"})
            return
        await self._respond(writer, 200, {"ok": True,
                                          "lease": lease.as_dict()})

    async def _complete(self, writer, worker: str, request) -> None:
        envelope = request.get("envelope")
        if not isinstance(envelope, dict):
            await self._respond(writer, 400, {
                "error": "completion needs an envelope object"})
            return
        result = await asyncio.to_thread(
            self.service.complete_remote, worker,
            str(request.get("job_id") or ""),
            str(request.get("lease_id") or ""),
            envelope, request.get("artifact_digest"))
        status = result["status"]
        if status == "unknown":
            await self._respond(writer, 404, {
                "error": "no such job", **result})
        elif status in ("stale", "rejected"):
            await self._respond(writer, 409, result)
        else:  # ok | duplicate
            await self._respond(writer, 200, result)

    # -- SSE ------------------------------------------------------------

    @staticmethod
    def _after(query: dict, headers: dict) -> int:
        raw = query.get("after") or headers.get("last-event-id") or "0"
        try:
            return max(0, int(raw))
        except ValueError:
            return 0

    async def _start_sse(self, writer) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()

    async def _stream_job(self, writer, job_id: str, query,
                          headers) -> None:
        job = self.service.queue.get(job_id)
        if job is None:
            await self._respond(writer, 404,
                                {"error": f"no job {job_id!r}"})
            return
        after = self._after(query, headers)
        await self._start_sse(writer)
        assert self.events is not None
        async for lsn, data in self.events.stream(after):
            if data["job"]["id"] != job_id:
                continue
            writer.write(format_sse(lsn, data))
            await writer.drain()
            if data["job"]["state"] in ("done", "failed"):
                break

    async def _stream_all(self, writer, query, headers) -> None:
        after = self._after(query, headers)
        await self._start_sse(writer)
        assert self.events is not None
        async for lsn, data in self.events.stream(after):
            writer.write(format_sse(lsn, data))
            await writer.drain()


async def run_server(service: ReproService, host: str, port: int,
                     ready_callback=None) -> None:
    """Start a server and block until cancelled or signalled.

    SIGINT/SIGTERM handlers are installed on the event loop itself:
    a server backgrounded by a non-interactive shell (CI smoke, an
    init script) inherits SIGINT as ignored, which Python honors --
    without these handlers a ``kill -INT`` would be silently dropped
    and the process would only die to SIGKILL, skipping the graceful
    drain below.
    """
    server = ServeServer(service, host, port)
    await server.start()
    if ready_callback is not None:
        ready_callback(server)
    loop = asyncio.get_running_loop()
    task = asyncio.current_task()
    hooked = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, task.cancel)
            hooked.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or non-unix: rely on the runner
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        for signum in hooked:
            loop.remove_signal_handler(signum)
        await server.stop()


__all__ = ["ServeServer", "run_server"]
