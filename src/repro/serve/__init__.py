"""repro.serve: record/replay as a service.

The serve layer turns the experiment runner into a long-lived,
crash-consistent service:

* :class:`JobQueue` -- write-ahead-journaled durable job queue; a
  SIGKILL at any byte loses no accepted job and duplicates none
  (:mod:`repro.serve.queue`);
* :class:`ReproService` -- the transport-independent core wiring
  queue, content-addressed cache, pluggable executor backend,
  admission control and ``serve_*`` telemetry
  (:mod:`repro.serve.service`);
* :class:`ServeServer` -- stdlib asyncio HTTP front end with SSE
  streaming of job transitions (:mod:`repro.serve.http`);
* :class:`ServeClient` -- blocking client for the CLI and CI
  (:mod:`repro.serve.client`);
* :func:`build_job_spec` / :func:`execute_job_spec` -- the job-kind
  registry mapping service requests onto runner specs and campaign
  drivers (:mod:`repro.serve.kinds`);
* :class:`AdmissionController` -- bounded queue depth, per-tenant
  quotas, guard-budget job deadlines (:mod:`repro.serve.admission`);
* :class:`ServeWorker` -- the ``repro worker`` fleet process pulling
  jobs over the lease-based claim/heartbeat/complete wire protocol
  (:mod:`repro.serve.worker`), with lease bookkeeping in
  :mod:`repro.serve.lease`.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.client import ServeClient
from repro.serve.http import ServeServer, run_server
from repro.serve.kinds import (
    CAMPAIGN_KINDS,
    JOB_KINDS,
    RUNSPEC_KINDS,
    CampaignSpec,
    build_job_spec,
    execute_job_spec,
)
from repro.serve.model import (
    STATES,
    TERMINAL_STATES,
    Job,
    JobStateError,
)
from repro.serve.lease import Lease, WorkerRegistry
from repro.serve.queue import (
    JobQueue,
    read_journal,
    read_journal_dir,
)
from repro.serve.service import ReproService
from repro.serve.sse import EventLog, format_sse
from repro.serve.worker import ServeWorker, run_worker

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CAMPAIGN_KINDS",
    "CampaignSpec",
    "EventLog",
    "JOB_KINDS",
    "Job",
    "JobQueue",
    "JobStateError",
    "Lease",
    "RUNSPEC_KINDS",
    "ReproService",
    "STATES",
    "ServeClient",
    "ServeServer",
    "ServeWorker",
    "TERMINAL_STATES",
    "WorkerRegistry",
    "build_job_spec",
    "execute_job_spec",
    "format_sse",
    "read_journal",
    "read_journal_dir",
    "run_server",
    "run_worker",
]
