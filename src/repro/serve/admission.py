"""Admission control: bounded queue depth and per-tenant quotas.

The service never queues unboundedly.  Before a submission touches
the journal, :class:`AdmissionController` checks

* **capacity** -- total non-terminal jobs (queued + running) must stay
  under ``capacity``; beyond it the request is shed with HTTP 429 and
  a ``Retry-After`` estimated from observed service latency, and
* **tenant quota** -- no single tenant may hold more than
  ``tenant_quota`` non-terminal jobs, so one flooding client cannot
  starve the rest.

Per-job resource ceilings come from the guard layer's
:class:`~repro.guard.limits.Budgets`: ``deadline_seconds`` becomes the
executor's per-job timeout (enforced in-worker by
:func:`~repro.runner.jobs.invoke` and backstopped by the pool sweep),
so a job admitted under a budget cannot hold a worker hostage --
admission bounds *how much* work enters, the guard budget bounds *how
long* each admitted piece may take.

Admission also owns the *scheduling* parameters.  ``priority`` and
``deadline`` ride in the submission's ``params`` dictionary (so the
CLI spelling is just ``--param priority=-1``), but they must **not**
reach the spec: two submissions of the same work at different
priorities are the same computation and must hash to the same cached
artifact.  :func:`split_service_params` peels them off before spec
validation; the queue stores them on the job itself (claim order is
``(priority, enqueue LSN)``; a job past its deadline is failed at
claim time with a typed reason instead of wasting a worker).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.guard.limits import Budgets
from repro.serve.model import QueueCounts

#: Default ceilings: modest, explicit, overridable from the CLI.
DEFAULT_CAPACITY = 64
DEFAULT_TENANT_QUOTA = 32

#: Retry-After fallback when no latency has been observed yet.
MIN_RETRY_AFTER = 1.0

#: Scheduling parameters accepted on every kind and peeled off before
#: spec validation/hashing (see the module docstring).
SERVICE_PARAMS = ("priority", "deadline")


def split_service_params(params: dict) -> tuple[dict, dict]:
    """Separate scheduling parameters from spec parameters.

    Returns ``(spec_params, schedule)`` where ``schedule`` is
    ``{"priority": int, "deadline": float | None}``.  ``priority`` is
    any integer, lower claims first, default 0; ``deadline`` is
    seconds from submission (strictly positive) after which the job
    is failed at claim time.  Raises
    :class:`~repro.errors.ConfigurationError` on uncoercible values,
    mirroring :func:`~repro.serve.kinds.validate_params` for the
    parameters that module never sees.
    """
    spec_params = dict(params)
    raw_priority = spec_params.pop("priority", 0)
    raw_deadline = spec_params.pop("deadline", None)
    try:
        if isinstance(raw_priority, bool):
            raise TypeError
        priority = int(raw_priority)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"priority must be an integer, got {raw_priority!r}"
        ) from None
    deadline = None
    if raw_deadline is not None:
        try:
            deadline = float(raw_deadline)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"deadline must be seconds (number), got "
                f"{raw_deadline!r}") from None
        if deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive seconds, got {deadline:g}")
    return spec_params, {"priority": priority, "deadline": deadline}


@dataclass
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = ""
    retry_after: float = 0.0

    def as_dict(self) -> dict:
        return {"admitted": self.admitted, "reason": self.reason,
                "retry_after": self.retry_after}


class AdmissionController:
    """Stateless-per-request admission policy over live queue counts."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 tenant_quota: int = DEFAULT_TENANT_QUOTA,
                 budgets: Budgets | None = None,
                 workers: int = 1) -> None:
        self.capacity = max(1, int(capacity))
        self.tenant_quota = max(1, int(tenant_quota))
        self.budgets = budgets or Budgets()
        self.workers = max(1, int(workers))
        self._latencies: list[float] = []

    @property
    def job_timeout(self) -> float | None:
        """The per-job wall-clock budget admission promises jobs run
        under (wired into the executor's ``invoke`` timeout)."""
        return self.budgets.deadline_seconds

    def observe_latency(self, seconds: float) -> None:
        """Record one completed job's service time (bounded window)."""
        self._latencies.append(seconds)
        if len(self._latencies) > 256:
            del self._latencies[:-256]

    def mean_latency(self) -> float:
        if not self._latencies:
            return MIN_RETRY_AFTER
        return sum(self._latencies) / len(self._latencies)

    def retry_after(self, counts: QueueCounts) -> float:
        """Seconds until a shed client plausibly fits: queue depth
        times mean service time, divided across workers."""
        backlog = max(1, counts.depth - self.capacity + 1)
        estimate = backlog * self.mean_latency() / self.workers
        return max(MIN_RETRY_AFTER, round(estimate, 2))

    def check(self, tenant: str,
              counts: QueueCounts) -> AdmissionDecision:
        """Admit or shed one submission from ``tenant``."""
        if counts.depth >= self.capacity:
            return AdmissionDecision(
                admitted=False,
                reason=f"queue full ({counts.depth}/{self.capacity} "
                       f"jobs in flight)",
                retry_after=self.retry_after(counts))
        held = counts.by_tenant.get(tenant, 0)
        if held >= self.tenant_quota:
            return AdmissionDecision(
                admitted=False,
                reason=f"tenant {tenant!r} at quota "
                       f"({held}/{self.tenant_quota} jobs in flight)",
                retry_after=self.retry_after(counts))
        return AdmissionDecision(admitted=True)


__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DEFAULT_CAPACITY",
    "DEFAULT_TENANT_QUOTA",
    "MIN_RETRY_AFTER",
    "SERVICE_PARAMS",
    "split_service_params",
]
