"""Blocking HTTP client for the record/replay service.

Built on :mod:`http.client` (stdlib, no dependency), one connection
per call to match the server's ``Connection: close`` discipline.  The
CLI's ``repro submit`` / ``repro jobs`` commands and the CI smoke test
are the intended users; anything speaking JSON-over-HTTP works just as
well without this module.

Every error becomes a :class:`~repro.errors.ServeError` carrying the
HTTP status (and the ``Retry-After`` hint on a 429 shed), so callers
distinguish "malformed spec" from "come back later" without parsing
message text.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.errors import ServeError
from repro.serve.model import TERMINAL_STATES


class ServeClient:
    """Talk to one ``repro serve`` instance.

    ``token`` is the shared-secret bearer token; it rides every
    request as ``Authorization: Bearer <token>`` (required by servers
    started with ``--auth-token`` for submissions and all fleet
    calls).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8321,
                 timeout: float = 30.0,
                 token: str | None = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.token = token or None

    # -- plumbing -------------------------------------------------------

    def _auth_headers(self) -> dict:
        if not self.token:
            return {}
        return {"Authorization": f"Bearer {self.token}"}

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        payload = json.dumps(body).encode() if body is not None \
            else None
        headers = {"Content-Type": "application/json"} if payload \
            else {}
        headers.update(self._auth_headers())
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            try:
                conn.request(method, path, body=payload,
                             headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except OSError as error:
                raise ServeError(
                    f"cannot reach serve at {self.host}:{self.port}: "
                    f"{error}") from error
            try:
                data = json.loads(raw.decode() or "{}")
            except ValueError:
                data = {"error": raw.decode(errors="replace")}
            if response.status >= 400:
                retry_after = float(
                    response.headers.get("Retry-After", 0) or 0)
                raise ServeError(
                    data.get("error",
                             f"HTTP {response.status} on {path}"),
                    status=response.status, retry_after=retry_after)
            return data
        finally:
            conn.close()

    # -- API ------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, kind: str, params: dict | None = None,
               tenant: str = "default") -> dict:
        """Submit one job; returns the accepted job snapshot.

        Raises :class:`ServeError` with ``status=429`` (and a
        ``retry_after``) when the server sheds the request.
        """
        return self._request("POST", "/v1/jobs", {
            "kind": kind, "params": params or {}, "tenant": tenant})

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, tenant: str | None = None,
             state: str | None = None) -> list[dict]:
        query = "&".join(f"{k}={v}" for k, v in
                         (("tenant", tenant), ("state", state))
                         if v is not None)
        path = "/v1/jobs" + (f"?{query}" if query else "")
        return self._request("GET", path)["jobs"]

    def artifact(self, artifact_hash: str) -> dict:
        return self._request("GET", f"/v1/artifacts/{artifact_hash}")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    # -- the fleet wire protocol (repro worker speaks these) ------------

    def workers(self) -> dict:
        """Fleet census: live workers, degradation, lease counts."""
        return self._request("GET", "/v1/workers")

    def claim(self, worker: str,
              lease_ttl: float | None = None) -> dict:
        """Claim one job under a lease; ``{"job": None}`` when idle."""
        body = {"worker": worker}
        if lease_ttl is not None:
            body["lease_ttl"] = lease_ttl
        return self._request("POST", "/v1/workers/claim", body)

    def heartbeat(self, worker: str, job_id: str,
                  lease_id: str) -> dict:
        """Renew a lease; raises ``ServeError(status=409)`` if lost."""
        return self._request("POST", "/v1/workers/heartbeat", {
            "worker": worker, "job_id": job_id, "lease_id": lease_id})

    def complete(self, worker: str, job_id: str, lease_id: str,
                 envelope: dict,
                 artifact_digest: str | None = None) -> dict:
        """Upload one finished job's envelope for verification."""
        return self._request("POST", "/v1/workers/complete", {
            "worker": worker, "job_id": job_id, "lease_id": lease_id,
            "envelope": envelope, "artifact_digest": artifact_digest})

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.25) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {job['state']} after "
                    f"{timeout:g}s")
            time.sleep(poll)

    def stream(self, job_id: str | None = None, after: int = 0,
               timeout: float | None = None):
        """Yield ``(event_id, data)`` SSE events as they arrive.

        ``job_id=None`` follows the global feed (which never ends --
        bound it with ``timeout``); a per-job stream ends when the
        server closes it at the job's terminal transition.
        """
        path = (f"/v1/jobs/{job_id}/events" if job_id
                else "/v1/events")
        if after:
            path += f"?after={after}"
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout)
        try:
            try:
                conn.request("GET", path,
                             headers=self._auth_headers())
                response = conn.getresponse()
            except OSError as error:
                raise ServeError(
                    f"cannot reach serve at {self.host}:{self.port}: "
                    f"{error}") from error
            if response.status >= 400:
                raise ServeError(f"HTTP {response.status} on {path}",
                                 status=response.status)
            event_id = 0
            for raw in response:
                line = raw.decode().rstrip("\n").rstrip("\r")
                if line.startswith("id:"):
                    event_id = int(line[3:].strip())
                elif line.startswith("data:"):
                    yield event_id, json.loads(line[5:].strip())
        finally:
            conn.close()


__all__ = ["ServeClient"]
