"""The concurrent-program model executed by the simulated processors.

DeLorean's determinism guarantee is about *architectural* state: the
same instruction in the initial and replayed execution must see exactly
the same full-system state (Section 4.2), including performing "the same
number of spins on a spinlock".  To exercise that guarantee we need
programs whose dynamic instruction stream genuinely depends on the
interleaving, so the model includes spin-locks, barriers and atomic
read-modify-writes alongside plain loads, stores and compute blocks,
plus the uncached I/O and special system instructions of Table 4 that
truncate chunks deterministically.

A :class:`Program` is one statically-known op list per thread plus
initial memory contents and external-event streams.  A
:class:`ThreadState` is the full architectural state of one hardware
thread -- program position, intra-op progress, the accumulator register
and retired-instruction count -- and is cheap to snapshot, which is how
processors roll back on chunk squash.

Dynamic instruction accounting (used for chunk sizing and for the
bits-per-kilo-instruction log metrics):

========  =====================================================
Op         Dynamic instructions
========  =====================================================
LOAD       1
STORE      1
RMW        1 (atomic; counts as a single memory instruction)
COMPUTE    ``count`` ALU instructions (no memory traffic)
LOCK       4 per spin iteration (load, test, branch, CAS/retry)
UNLOCK     1 (store)
BARRIER    1 (atomic increment) + 2 per spin iteration
IO_LOAD    1 (uncached; truncates the chunk)
IO_STORE   1 (uncached; truncates the chunk)
SPECIAL    1 (system instruction; truncates the chunk)
TRAP       ``count`` handler instructions executed inline
========  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Architectural word mask -- the accumulator and memory hold 64-bit words.
WORD_MASK = (1 << 64) - 1

#: Instructions charged per spin iteration of a LOCK (load/test/branch/CAS).
LOCK_SPIN_COST = 4

#: Instructions charged per spin iteration of a BARRIER wait (load/branch).
BARRIER_SPIN_COST = 2


class OpKind(enum.Enum):
    """The operation vocabulary of simulated threads."""

    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"
    RMW = "rmw"
    LOCK = "lock"
    UNLOCK = "unlock"
    BARRIER = "barrier"
    IO_LOAD = "io_load"
    IO_STORE = "io_store"
    SPECIAL = "special"
    TRAP = "trap"


@dataclass(frozen=True)
class Op:
    """One static operation in a thread's program.

    Fields are interpreted per :class:`OpKind`:

    * ``address`` -- word address for memory ops; port number for I/O ops.
    * ``value`` -- literal store/RMW operand; ``None`` means "derive from
      the accumulator", which makes stored values path-dependent and thus
      sensitive to the interleaving (good for determinism testing).
    * ``count`` -- ALU instructions for COMPUTE; handler length for TRAP;
      participant count for BARRIER.
    """

    kind: OpKind
    address: int = 0
    value: int | None = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ConfigurationError(f"negative address in {self}")
        if self.count < 1:
            raise ConfigurationError(f"non-positive count in {self}")
        if self.kind is OpKind.BARRIER and self.count < 1:
            raise ConfigurationError("BARRIER needs a participant count")


_AFFINE_A = 0x5851F42D4C957F2D
_AFFINE_C = 0x14057B7EF767814F
_WORD_MOD = 1 << 64


def _affine_power(count: int) -> tuple[int, int]:
    """(A^n mod 2^64, 1 + A + ... + A^(n-1) mod 2^64) by fast doubling."""
    multiplier = 1
    geometric = 0
    base = _AFFINE_A        # A^(2^i)
    base_sum = 1            # S(2^i) = 1 + A + ... + A^(2^i - 1)
    n = count
    while n:
        if n & 1:
            # Compose the 2^i-step block after the accumulated steps:
            # S(a + b) = A^b * S(a) + S(b).
            geometric = (geometric * base + base_sum) % _WORD_MOD
            multiplier = (multiplier * base) % _WORD_MOD
        base_sum = (base_sum * (base + 1)) % _WORD_MOD
        base = (base * base) % _WORD_MOD
        n >>= 1
    return multiplier, geometric


def compute_mix(accumulator: int, count: int) -> int:
    """Deterministic accumulator update for a ``count``-instruction
    COMPUTE block.

    Models each ALU instruction as the affine map ``x -> A*x + C`` (a
    64-bit LCG step) and composes it ``count`` times in O(log count).
    Composition makes the update *segmentation-invariant*: splitting a
    block at any chunk boundary and applying the two halves yields the
    same accumulator as applying the whole block.  This matters because
    replay may legally split a chunk into back-to-back pieces
    (Section 4.2.3) and must still reproduce every stored value.
    """
    multiplier, geometric = _affine_power(count)
    return (accumulator * multiplier + _AFFINE_C * geometric) % _WORD_MOD


# Intra-op progress stages for multi-step ops.
_STAGE_START = 0
_STAGE_BARRIER_WAIT = 1


@dataclass
class ThreadState:
    """Complete architectural state of one simulated hardware thread.

    ``op_index`` plus the intra-op fields identify the exact resume
    point; ``accumulator`` is the (single) architectural register;
    ``retired`` counts dynamic instructions.  ``snapshot``/``restore``
    are what chunk squash uses to roll a thread back to a chunk
    boundary, and what system checkpointing saves.
    """

    thread_id: int
    op_index: int = 0
    accumulator: int = 0
    retired: int = 0
    # Intra-op progress (only one of these is live at a time).
    compute_remaining: int = 0
    stage: int = _STAGE_START
    barrier_target: int = 0
    finished: bool = False
    # Interrupt-handler execution: when ``handler_ops`` is set, the
    # thread executes from it (at ``handler_index``) instead of from its
    # program, resuming the program when the handler runs out.  The
    # ``saved_*`` fields park the interrupted op's intra-op progress
    # (a handler may arrive mid-COMPUTE or mid-BARRIER; its own ops
    # must not clobber that state).
    handler_ops: tuple[Op, ...] | None = None
    handler_index: int = 0
    saved_compute_remaining: int = 0
    saved_stage: int = 0
    saved_barrier_target: int = 0

    def snapshot(self) -> "ThreadState":
        """An independent copy of this state."""
        return ThreadState(
            thread_id=self.thread_id,
            op_index=self.op_index,
            accumulator=self.accumulator,
            retired=self.retired,
            compute_remaining=self.compute_remaining,
            stage=self.stage,
            barrier_target=self.barrier_target,
            finished=self.finished,
            handler_ops=self.handler_ops,
            handler_index=self.handler_index,
            saved_compute_remaining=self.saved_compute_remaining,
            saved_stage=self.saved_stage,
            saved_barrier_target=self.saved_barrier_target,
        )

    def restore(self, saved: "ThreadState") -> None:
        """Overwrite this state with ``saved`` (squash rollback)."""
        self.op_index = saved.op_index
        self.accumulator = saved.accumulator
        self.retired = saved.retired
        self.compute_remaining = saved.compute_remaining
        self.stage = saved.stage
        self.barrier_target = saved.barrier_target
        self.finished = saved.finished
        self.handler_ops = saved.handler_ops
        self.handler_index = saved.handler_index
        self.saved_compute_remaining = saved.saved_compute_remaining
        self.saved_stage = saved.saved_stage
        self.saved_barrier_target = saved.saved_barrier_target

    @property
    def in_handler(self) -> bool:
        """True while the thread is executing an interrupt handler."""
        return self.handler_ops is not None

    def enter_handler(self, ops: tuple[Op, ...]) -> None:
        """Begin executing an interrupt handler, parking the
        interrupted op's intra-op progress."""
        self.handler_ops = ops
        self.handler_index = 0
        self.saved_compute_remaining = self.compute_remaining
        self.saved_stage = self.stage
        self.saved_barrier_target = self.barrier_target
        self.compute_remaining = 0
        self.stage = 0
        self.barrier_target = 0

    def exit_handler(self) -> None:
        """The handler ran out: resume the interrupted op exactly
        where it stopped."""
        self.handler_ops = None
        self.handler_index = 0
        self.compute_remaining = self.saved_compute_remaining
        self.stage = self.saved_stage
        self.barrier_target = self.saved_barrier_target
        self.saved_compute_remaining = 0
        self.saved_stage = 0
        self.saved_barrier_target = 0

    @property
    def exhausted(self) -> bool:
        """True when no instruction can ever execute from this state:
        the program is finished *and* no handler is in progress."""
        return self.finished and self.handler_ops is None

    def architectural_key(self) -> tuple:
        """Hashable digest of the architectural state (determinism
        checks compare these between record and replay)."""
        return (
            self.thread_id,
            self.op_index,
            self.accumulator,
            self.retired,
            self.compute_remaining,
            self.stage,
            self.barrier_target,
            self.finished,
            self.handler_ops,
            self.handler_index,
            self.saved_compute_remaining,
            self.saved_stage,
            self.saved_barrier_target,
        )


@dataclass
class Program:
    """A whole-machine workload: one op list per thread plus environment.

    ``initial_memory`` maps word addresses to initial values (unmapped
    words read as zero).  ``interrupts`` and ``dma_transfers`` are the
    external-event streams (see :mod:`repro.machine.events`); they are
    part of the workload, not of the recording, because DeLorean logs
    them during the initial execution and re-injects them from its logs
    during replay.  ``io_seed`` parameterizes the modeled I/O device's
    load values.
    """

    threads: list[list[Op]]
    name: str = "unnamed"
    initial_memory: dict[int, int] = field(default_factory=dict)
    interrupts: list = field(default_factory=list)
    dma_transfers: list = field(default_factory=list)
    io_seed: int = 0

    def __post_init__(self) -> None:
        if not self.threads:
            raise ConfigurationError("a program needs at least one thread")
        for index, ops in enumerate(self.threads):
            for op in ops:
                if not isinstance(op, Op):
                    raise ConfigurationError(
                        f"thread {index} contains a non-Op entry: {op!r}")

    @property
    def num_threads(self) -> int:
        """Number of hardware threads the program occupies."""
        return len(self.threads)

    def static_lengths(self) -> list[int]:
        """Static op count of each thread (not dynamic instructions)."""
        return [len(ops) for ops in self.threads]

    def total_static_ops(self) -> int:
        """Total static ops across all threads."""
        return sum(self.static_lengths())
