"""Machine configuration and the coarse timing model.

The baseline configuration mirrors Table 5 of the paper: an 8-processor
CMP, 32 KB 4-way L1 with 32 B lines, 2 Kbit signatures, 30-cycle commit
arbitration round trip, up to 4 concurrent commits, 2 simultaneous
chunks per processor, and a 300-cycle memory round trip.

Timing here is *coarse*: we charge each dynamic instruction a base CPI
and expose a fraction of each cache-miss latency, with the exposed
fraction depending on how aggressively the modeled machine overlaps
misses.  Chunked execution (BulkSC) and the RC baseline overlap
aggressively; SC exposes most of a load miss; PC/TSO sits in between.
This reproduces the paper's *relative* performance structure (RC >
DeLorean modes > SC) without pretending to cycle accuracy -- see
DESIGN.md for the substitution argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chunks.signature import SignatureConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimingModel:
    """Instruction and memory-latency cost model.

    ``*_exposure`` factors are the fraction of a miss latency that the
    pipeline cannot hide under each execution model.  They are the main
    calibration knobs for the Figure 10/11 shapes.
    """

    base_cpi: float = 0.5          # 6-fetch/4-issue core, Table 5
    l1_hit_cycles: int = 2
    l2_hit_cycles: int = 13
    memory_cycles: int = 300
    # Exposed fraction of miss latency per execution model.
    chunk_load_exposure: float = 0.30   # BulkSC/DeLorean: full reordering
    rc_load_exposure: float = 0.30      # RC: equally aggressive
    rc_store_exposure: float = 0.0      # RC: store buffer hides stores
    sc_load_exposure: float = 0.37      # aggressive SC: speculative loads
    sc_store_exposure: float = 0.06     # exclusive prefetching for stores
    pc_load_exposure: float = 0.345     # PC/TSO estimate (Advanced RTR)
    pc_store_exposure: float = 0.02
    squash_flush_cycles: int = 20       # pipeline flush on chunk squash

    def instruction_cycles(self, instructions: int) -> float:
        """Base (non-memory) cost of a block of instructions."""
        return instructions * self.base_cpi

    def miss_latency(self, level: str) -> int:
        """Round-trip latency for a miss served at ``level``."""
        if level == "l1":
            return self.l1_hit_cycles
        if level == "l2":
            return self.l2_hit_cycles
        if level == "memory":
            return self.memory_cycles
        raise ConfigurationError(f"unknown memory level {level!r}")


@dataclass(frozen=True)
class MachineConfig:
    """Full configuration of the simulated CMP (Table 5 defaults)."""

    num_processors: int = 8
    line_words: int = 8                # 32 B lines of 4 B words
    l1_sets: int = 128                 # 32 KB / 4-way / 32 B lines
    l1_ways: int = 4
    l2_lines: int = 65536              # 8 MB L2 as a line-capacity filter
    standard_chunk_size: int = 2000
    simultaneous_chunks: int = 2
    max_concurrent_commits: int = 4
    arbitration_roundtrip: int = 30    # request+grant, record mode
    commit_propagation_cycles: int = 220
    replay_arbitration_roundtrip: int = 50  # replay penalty (Section 6.2.1)
    token_hop_cycles: int = 130         # PicoLog commit-token hop latency
    squash_retry_limit: int = 8        # squashes before size reduction
    signature: SignatureConfig = field(default_factory=SignatureConfig)
    timing: TimingModel = field(default_factory=TimingModel)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ConfigurationError("need at least one processor")
        if self.num_processors > 64:
            raise ConfigurationError(
                "configurations beyond 64 processors are not supported")
        if self.line_words < 1 or self.line_words & (self.line_words - 1):
            raise ConfigurationError("line_words must be a power of two")
        if self.standard_chunk_size < 8:
            raise ConfigurationError("chunks must hold at least 8 "
                                     "instructions")
        if self.simultaneous_chunks < 1:
            raise ConfigurationError("need at least one chunk per "
                                     "processor")
        if self.max_concurrent_commits < 1:
            raise ConfigurationError("need at least one commit slot")

    @property
    def line_shift(self) -> int:
        """log2(line_words): word address -> line address shift."""
        return self.line_words.bit_length() - 1

    def line_of(self, word_address: int) -> int:
        """Cache-line address of a word address."""
        return word_address >> self.line_shift

    @property
    def dma_proc_id(self) -> int:
        """procID used by the DMA engine in the PI log (Section 3.3)."""
        return self.num_processors

    @property
    def pi_entry_bits(self) -> int:
        """Width of a PI log entry: enough for all procIDs + DMA.

        4 bits for up to 15 processors (Table 5's configuration); wider
        only for the 16-processor sweeps of Figure 12.
        """
        return max(4, self.num_processors.bit_length())
