"""A deterministic discrete-event engine.

Everything in the simulated machine -- chunk completion, commit-request
arrival, grant delivery, commit propagation, interrupts, DMA -- is an
event on one global queue.  Determinism matters doubly here: the
*simulator* must be reproducible run-to-run (so tests are stable), and
record/replay comparisons must not be polluted by queue-order
nondeterminism.  Ties are broken by (priority, insertion sequence),
never by object identity.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import DeadlockError


class EventEngine:
    """Priority-queue event loop with deterministic tie-breaking."""

    #: Every ``dispatch_stride`` dispatches, ``dispatch_hook(now,
    #: queue_depth, processed)`` is called (telemetry sampling).  The
    #: hook observes only; it must not schedule or mutate machine state.
    dispatch_stride = 64

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, int, Callable[[], None]]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        self.dispatch_hook: Callable[[float, int, int], None] | None = None

    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events dispatched so far (progress diagnostics)."""
        return self._processed

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
    ) -> None:
        """Schedule ``action`` to run ``delay`` cycles from now.

        Lower ``priority`` runs first among same-time events.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: {delay}")
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, self._sequence, action))
        self._sequence += 1

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
    ) -> None:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        self.schedule(max(0.0, time - self._now), action, priority)

    def run(self, max_events: int | None = None) -> None:
        """Run until the queue drains.

        ``max_events`` bounds total dispatches; exceeding it raises
        :class:`DeadlockError`, which in practice means the simulated
        machine is livelocked (e.g. every processor spinning on a lock
        whose holder cannot commit).
        """
        dispatched = 0
        while self._queue:
            time, _, _, action = heapq.heappop(self._queue)
            self._now = time
            action()
            self._processed += 1
            dispatched += 1
            if (self.dispatch_hook is not None
                    and self._processed % self.dispatch_stride == 0):
                self.dispatch_hook(self._now, len(self._queue),
                                   self._processed)
            if max_events is not None and dispatched > max_events:
                raise DeadlockError(
                    f"simulation exceeded {max_events} events at cycle "
                    f"{self._now:.0f}; the machine is likely livelocked")

    def step(self) -> bool:
        """Dispatch exactly one queued event.

        Returns False (without advancing time) when the queue is empty.
        This is the debugger's drive primitive: the replay controller
        pumps events one at a time so it can pause the machine at an
        exact commit boundary instead of running to completion.
        """
        if not self._queue:
            return False
        time, _, _, action = heapq.heappop(self._queue)
        self._now = time
        action()
        self._processed += 1
        if (self.dispatch_hook is not None
                and self._processed % self.dispatch_stride == 0):
            self.dispatch_hook(self._now, len(self._queue),
                               self._processed)
        return True

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
