"""The simulated chip-multiprocessor DeLorean runs on.

This subpackage provides the machine substrate: the concurrent-program
model the processors interpret (:mod:`~repro.machine.program`), the
deterministic discrete-event engine (:mod:`~repro.machine.engine`), flat
value memory with a DMA engine (:mod:`~repro.machine.memory`), the
timing model (:mod:`~repro.machine.timing`), external events
(:mod:`~repro.machine.events`), system checkpointing
(:mod:`~repro.machine.checkpoint`), and the top-level CMP
(:mod:`~repro.machine.system`).
"""

from repro.machine.program import (
    Op,
    OpKind,
    Program,
    ThreadState,
    compute_mix,
)
from repro.machine.timing import MachineConfig, TimingModel

# NOTE: repro.machine.system is intentionally not imported here -- it
# sits at the top of the dependency graph (it imports repro.core and
# repro.analysis, which import repro.chunks, which import this
# package's leaf modules).  Import it as repro.machine.system directly.

__all__ = [
    "Op",
    "OpKind",
    "Program",
    "ThreadState",
    "compute_mix",
    "MachineConfig",
    "TimingModel",
]
