"""System checkpointing (Section 3.3).

DeLorean, like other full-system replayers, pairs its logs with a
system checkpoint taken at the start of the recorded interval (the
paper points to ReVive/SafetyNet and explicitly does not focus on the
mechanism).  We provide the equivalent: a :class:`SystemCheckpoint`
captures the committed architectural state of a machine -- memory image
plus per-thread architectural state and commit counts -- and can seed a
fresh machine so that replay starts from exactly the checkpointed
state.

The replay drivers in this repository always replay whole executions
(checkpoint at GCC = 0, in the paper's terms), but the checkpoint
object itself captures any quiescent point and is unit-tested for
capture/restore identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machine.program import Program, ThreadState


@dataclass(frozen=True)
class SystemCheckpoint:
    """Committed architectural state at one global commit boundary."""

    memory_image: dict[int, int]
    thread_states: dict[int, ThreadState]
    committed_counts: dict[int, int]
    global_commit_count: int = 0
    label: str = "gcc0"

    @classmethod
    def initial(cls, program: Program) -> "SystemCheckpoint":
        """The checkpoint at the very start of an execution."""
        return cls(
            memory_image=dict(program.initial_memory),
            thread_states={
                index: ThreadState(thread_id=index,
                                   finished=not ops)
                for index, ops in enumerate(program.threads)},
            committed_counts={
                index: 0 for index in range(program.num_threads)},
            global_commit_count=0,
            label="gcc0",
        )

    @classmethod
    def capture(cls, machine, label: str = "capture") -> \
            "SystemCheckpoint":
        """Snapshot a machine's committed state.

        The machine must be quiescent at a commit boundary (no
        speculative chunks in flight); capturing mid-speculation would
        leak uncommitted state into the checkpoint.
        """
        for proc in machine.processors:
            if proc.outstanding:
                raise ConfigurationError(
                    f"cannot checkpoint: processor {proc.proc_id} has "
                    f"{len(proc.outstanding)} speculative chunks in "
                    f"flight")
        return cls(
            memory_image=machine.memory.snapshot(),
            thread_states={
                proc.proc_id: proc.spec_state.snapshot()
                for proc in machine.processors},
            committed_counts={
                proc.proc_id: proc.committed_count
                for proc in machine.processors},
            global_commit_count=machine.arbiter.grant_count,
            label=label,
        )

    def restore_into(self, machine) -> None:
        """Load this checkpoint into a freshly-constructed machine."""
        for proc in machine.processors:
            if proc.outstanding or proc.committed_count:
                raise ConfigurationError(
                    "checkpoints restore only into fresh machines")
        machine.memory.restore(self.memory_image)
        for proc_id, state in self.thread_states.items():
            machine.processors[proc_id].spec_state.restore(state)
            machine.processors[proc_id].committed_count = (
                self.committed_counts.get(proc_id, 0))
            machine.processors[proc_id].next_seq = (
                self.committed_counts.get(proc_id, 0) + 1)

    def matches_state(
        self,
        memory_image: dict[int, int],
        thread_states: dict[int, ThreadState],
    ) -> bool:
        """True when a (memory, threads) pair equals this checkpoint --
        the test suite's capture/restore identity check."""
        if {a: v for a, v in self.memory_image.items() if v} != \
                {a: v for a, v in memory_image.items() if v}:
            return False
        for proc_id, state in self.thread_states.items():
            other = thread_states.get(proc_id)
            if other is None:
                return False
            if state.architectural_key() != other.architectural_key():
                return False
        return True


@dataclass
class CheckpointStore:
    """An ordered collection of checkpoints (ReVive-style ring)."""

    capacity: int = 8
    checkpoints: list[SystemCheckpoint] = field(default_factory=list)

    def add(self, checkpoint: SystemCheckpoint) -> None:
        """Keep the newest ``capacity`` checkpoints."""
        self.checkpoints.append(checkpoint)
        if len(self.checkpoints) > self.capacity:
            self.checkpoints.pop(0)

    def latest(self) -> SystemCheckpoint:
        """Most recent checkpoint."""
        if not self.checkpoints:
            raise ConfigurationError("no checkpoints taken yet")
        return self.checkpoints[-1]

    def before_commit(self, global_commit_count: int) -> SystemCheckpoint:
        """Newest checkpoint at or before a global commit count."""
        eligible = [c for c in self.checkpoints
                    if c.global_commit_count <= global_commit_count]
        if not eligible:
            raise ConfigurationError(
                f"no checkpoint at or before commit "
                f"{global_commit_count}")
        return eligible[-1]
