"""System checkpointing (Section 3.3).

DeLorean, like other full-system replayers, pairs its logs with a
system checkpoint taken at the start of the recorded interval (the
paper points to ReVive/SafetyNet and explicitly does not focus on the
mechanism).  We provide the equivalent: a :class:`SystemCheckpoint`
captures the committed architectural state of a machine -- memory image
plus per-thread architectural state and commit counts -- and can seed a
fresh machine so that replay starts from exactly the checkpointed
state.

The whole-execution replay drivers replay from GCC = 0 (in the paper's
terms), but the checkpoint object captures any committed commit
boundary: :meth:`SystemCheckpoint.capture` snapshots a quiescent
machine, :meth:`SystemCheckpoint.capture_committed` snapshots the
*committed* view of a machine paused mid-execution (the debugger's
case: speculation may be in flight, but committed state is exact at a
commit boundary), and :meth:`SystemCheckpoint.to_interval` bridges into
the replayer's ``start_checkpoint`` path so a mid-execution checkpoint
can seed an interval replay I(n, m).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machine.program import Program, ThreadState


@dataclass(frozen=True)
class SystemCheckpoint:
    """Committed architectural state at one global commit boundary.

    ``global_commit_count`` is the boundary's GCC -- logical commits in
    grant order including DMA bursts, i.e. the position in the
    recording's fingerprint sequence.  ``io_consumed`` and
    ``dma_consumed`` are the input-log consumption cursors at that
    boundary; they are what lets a mid-execution checkpoint resume
    consuming every log mid-stream (zero for the GCC = 0 checkpoint).
    """

    memory_image: dict[int, int]
    thread_states: dict[int, ThreadState]
    committed_counts: dict[int, int]
    global_commit_count: int = 0
    label: str = "gcc0"
    io_consumed: dict[int, int] = field(default_factory=dict)
    dma_consumed: int = 0

    @classmethod
    def initial(cls, program: Program) -> "SystemCheckpoint":
        """The checkpoint at the very start of an execution."""
        return cls(
            memory_image=dict(program.initial_memory),
            thread_states={
                index: ThreadState(thread_id=index,
                                   finished=not ops)
                for index, ops in enumerate(program.threads)},
            committed_counts={
                index: 0 for index in range(program.num_threads)},
            global_commit_count=0,
            label="gcc0",
        )

    @classmethod
    def capture(cls, machine, label: str = "capture") -> \
            "SystemCheckpoint":
        """Snapshot a machine's committed state.

        The machine must be quiescent at a commit boundary (no
        speculative chunks in flight); capturing mid-speculation would
        leak uncommitted state into the checkpoint.  For a machine
        paused mid-execution with speculation in flight, use
        :meth:`capture_committed` instead.
        """
        for proc in machine.processors:
            if proc.outstanding:
                raise ConfigurationError(
                    f"cannot checkpoint: processor {proc.proc_id} has "
                    f"{len(proc.outstanding)} speculative chunks in "
                    f"flight")
        return cls.capture_committed(machine, label=label)

    @classmethod
    def capture_committed(cls, machine, label: str = "capture") -> \
            "SystemCheckpoint":
        """Snapshot the *committed* view of a machine at a commit
        boundary, tolerating speculative chunks in flight.

        A processor's committed architectural state is the start state
        of its oldest uncommitted chunk (speculation builds linearly
        from the committed frontier; squash rolls back to it), or its
        live state when nothing is outstanding.  Committed memory is
        exact because speculative stores live in per-chunk write
        buffers until commit.  This is how the debugger checkpoints a
        paused replay: it always pauses at the finalization of a
        global commit, where committed state is precisely the first
        GCC commits.
        """
        base = 0
        gcc_local = len(machine._fingerprints)
        io_consumed: dict[int, int] = {}
        dma_consumed = 0
        if machine.is_replay:
            cursors = machine.replay_source.cursors()
            io_consumed = cursors["io"]
            dma_consumed = cursors["dma"]
            if machine.start_checkpoint is not None:
                base = machine.start_checkpoint.commit_index
        elif machine.recorder is not None:
            io_consumed = {
                proc: len(log)
                for proc, log in machine.recorder.io_logs.items()}
            dma_consumed = len(machine.recorder.dma_log.entries)
        thread_states = {}
        for proc in machine.processors:
            if proc.outstanding:
                state = proc.outstanding[0].start_state.snapshot()
            else:
                state = proc.spec_state.snapshot()
            thread_states[proc.proc_id] = state
        return cls(
            memory_image=machine.memory.snapshot(),
            thread_states=thread_states,
            committed_counts={
                proc.proc_id: proc.committed_count
                for proc in machine.processors},
            global_commit_count=base + gcc_local,
            label=label,
            io_consumed=io_consumed,
            dma_consumed=dma_consumed,
        )

    def to_interval(self) -> "IntervalCheckpoint":
        """Bridge into the replayer's ``start_checkpoint`` path.

        The resulting :class:`~repro.core.interval.IntervalCheckpoint`
        seeds :meth:`DeLoreanSystem.replay_interval` /
        ``build_replay_machine`` so replay resumes at this boundary --
        the mechanism behind the debugger's ``goto``/``rstep``.
        """
        from repro.core.interval import IntervalCheckpoint

        return IntervalCheckpoint(
            commit_index=self.global_commit_count,
            memory_image=dict(self.memory_image),
            thread_states={
                proc: state.snapshot()
                for proc, state in self.thread_states.items()},
            committed_counts=dict(self.committed_counts),
            io_consumed=dict(self.io_consumed),
            dma_consumed=self.dma_consumed,
            label=self.label or f"gcc{self.global_commit_count}",
        )

    @classmethod
    def from_interval(cls, checkpoint) -> "SystemCheckpoint":
        """The inverse bridge (an
        :class:`~repro.core.interval.IntervalCheckpoint` as a
        :class:`SystemCheckpoint`)."""
        return cls(
            memory_image=dict(checkpoint.memory_image),
            thread_states={
                proc: state.snapshot()
                for proc, state in checkpoint.thread_states.items()},
            committed_counts=dict(checkpoint.committed_counts),
            global_commit_count=checkpoint.commit_index,
            label=checkpoint.label or f"gcc{checkpoint.commit_index}",
            io_consumed=dict(checkpoint.io_consumed),
            dma_consumed=checkpoint.dma_consumed,
        )

    def restore_into(self, machine) -> None:
        """Load this checkpoint into a freshly-constructed machine."""
        for proc in machine.processors:
            if proc.outstanding or proc.committed_count:
                raise ConfigurationError(
                    "checkpoints restore only into fresh machines")
        machine.memory.restore(self.memory_image)
        for proc_id, state in self.thread_states.items():
            machine.processors[proc_id].spec_state.restore(state)
            machine.processors[proc_id].committed_count = (
                self.committed_counts.get(proc_id, 0))
            machine.processors[proc_id].next_seq = (
                self.committed_counts.get(proc_id, 0) + 1)

    def matches_state(
        self,
        memory_image: dict[int, int],
        thread_states: dict[int, ThreadState],
    ) -> bool:
        """True when a (memory, threads) pair equals this checkpoint --
        the test suite's capture/restore identity check."""
        if {a: v for a, v in self.memory_image.items() if v} != \
                {a: v for a, v in memory_image.items() if v}:
            return False
        for proc_id, state in self.thread_states.items():
            other = thread_states.get(proc_id)
            if other is None:
                return False
            if state.architectural_key() != other.architectural_key():
                return False
        return True


@dataclass
class CheckpointStore:
    """An ordered collection of checkpoints (ReVive-style ring)."""

    capacity: int = 8
    checkpoints: list[SystemCheckpoint] = field(default_factory=list)

    def add(self, checkpoint: SystemCheckpoint) -> None:
        """Keep the newest ``capacity`` checkpoints."""
        self.checkpoints.append(checkpoint)
        if len(self.checkpoints) > self.capacity:
            self.checkpoints.pop(0)

    def latest(self) -> SystemCheckpoint:
        """Most recent checkpoint."""
        if not self.checkpoints:
            raise ConfigurationError("no checkpoints taken yet")
        return self.checkpoints[-1]

    def before_commit(self, global_commit_count: int) -> SystemCheckpoint:
        """Newest checkpoint at or before a global commit count."""
        eligible = [c for c in self.checkpoints
                    if c.global_commit_count <= global_commit_count]
        if not eligible:
            raise ConfigurationError(
                f"no checkpoint at or before commit "
                f"{global_commit_count}")
        return eligible[-1]
