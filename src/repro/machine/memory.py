"""Flat word-addressed value memory.

The simulator models memory *values* -- not just addresses -- because
DeLorean's determinism guarantee is about architectural state: replay
must reproduce every loaded value, every spin count, and the exact final
memory image.  Memory is a sparse ``dict`` of 64-bit words; unmapped
words read as zero.

Chunk isolation is implemented above this layer: a chunk's stores live
in its private write buffer until commit, at which point the system
calls :meth:`MainMemory.apply` with the buffered writes.
"""

from __future__ import annotations

from repro.machine.program import WORD_MASK


class MainMemory:
    """Sparse committed-state memory shared by all processors."""

    def __init__(self, initial: dict[int, int] | None = None) -> None:
        self._words: dict[int, int] = {}
        if initial:
            for address, value in initial.items():
                self.write(address, value)

    def read(self, address: int) -> int:
        """Committed value at ``address`` (zero if never written)."""
        return self._words.get(address, 0)

    def write(self, address: int, value: int) -> None:
        """Commit a single word."""
        self._words[address] = value & WORD_MASK

    def apply(self, writes: dict[int, int]) -> None:
        """Commit a chunk's write buffer atomically."""
        for address, value in writes.items():
            self._words[address] = value & WORD_MASK

    def snapshot(self) -> dict[int, int]:
        """Copy of the full committed state (for checkpoints and
        determinism comparison)."""
        return dict(self._words)

    def restore(self, saved: dict[int, int]) -> None:
        """Replace the committed state with a snapshot."""
        self._words = dict(saved)

    def nonzero_words(self) -> dict[int, int]:
        """Committed state with zero words elided (canonical image)."""
        return {a: v for a, v in self._words.items() if v != 0}

    def __len__(self) -> int:
        return len(self._words)
