"""External (non-deterministic) event sources: interrupts, DMA, I/O.

These are the inputs a full-system recorder must log (Section 3.3): the
Interrupt log captures when each interrupt is delivered relative to the
processor's chunk sequence, the DMA log captures the data DMA writes to
memory (the DMA engine behaves like another processor and gets commit
permission from the arbiter), and the I/O log captures the values
returned by uncached I/O loads.

During the initial execution these events fire from the workload's
event streams and the modeled I/O device below; during replay they are
re-injected purely from the logs -- the replayer never consults the
device or the original event streams, which is what the input-log tests
verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machine.program import WORD_MASK, Op, OpKind

_MASK64 = (1 << 64) - 1

#: Word-address base of the modeled interrupt controller's status area.
#: Handlers read and write words here, giving them a real (shared)
#: memory footprint.
INTERRUPT_CONTROLLER_BASE = 0x7F000000


def build_handler_ops(
    vector: int,
    payload: int,
    handler_ops: int,
) -> tuple[Op, ...]:
    """Deterministic interrupt-handler body for a (vector, payload) pair.

    The handler reads the controller status word for its vector, runs a
    compute block sized to the requested handler length, and writes an
    acknowledgement derived from the payload.  Because the body is a
    pure function of the logged (vector, payload, length) triple, replay
    rebuilds the identical handler from the Interrupt log alone.
    """
    status_word = INTERRUPT_CONTROLLER_BASE + (vector % 256) * 16
    compute = max(1, handler_ops - 3)
    return (
        Op(OpKind.LOAD, address=status_word),
        Op(OpKind.COMPUTE, count=compute),
        Op(OpKind.STORE, address=status_word + 1,
           value=(payload ^ vector) & WORD_MASK),
        Op(OpKind.STORE, address=status_word + 2, value=None),
    )


@dataclass(frozen=True)
class InterruptEvent:
    """An asynchronous interrupt delivered to one processor.

    ``handler_ops`` is the number of handler instructions the interrupt
    injects (the handler is modeled as a compute-plus-memory block built
    by the processor).  ``high_priority`` selects the paper's policy of
    squashing the current chunk rather than waiting for it to complete
    (Section 4.2.1).
    """

    time: float
    processor: int
    vector: int
    payload: int = 0
    handler_ops: int = 64
    high_priority: bool = False
    # Replay only: the logged chunkID the handler must initiate at.  A
    # squash can push a pending handler back onto the queue; during
    # replay it may only be re-injected when the processor is about to
    # build exactly this chunk (0 = unconstrained, recording phase).
    replay_chunk_id: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("interrupt time must be >= 0")
        if self.handler_ops < 1:
            raise ConfigurationError("handler must have >= 1 instruction")


@dataclass(frozen=True)
class DmaTransfer:
    """A DMA write burst arriving at a given time.

    The writes map word addresses to values.  During recording the DMA
    engine requests commit permission from the arbiter before applying
    them (Section 3.3).
    """

    time: float
    writes: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("DMA time must be >= 0")
        if not self.writes:
            raise ConfigurationError("a DMA transfer must write something")


class IODevice:
    """Deterministic pseudo-device backing uncached I/O loads.

    Each I/O load returns a value derived from (seed, port, per-port
    sequence number).  The *device* is deterministic so simulator runs
    are reproducible, but the replayer must still take values from the
    I/O log -- tests enforce this by replaying with a device primed with
    a different seed and checking the replay still matches.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._sequence: dict[int, int] = {}

    def load(self, port: int) -> int:
        """Next value produced by ``port``."""
        sequence = self._sequence.get(port, 0)
        self._sequence[port] = sequence + 1
        mixed = (self.seed * 0x9E3779B97F4A7C15
                 + port * 0xC2B2AE3D27D4EB4F
                 + sequence * 0x165667B19E3779F9) & _MASK64
        mixed ^= mixed >> 31
        return mixed & WORD_MASK

    def store(self, port: int, value: int) -> None:
        """I/O stores are sinks; the device just absorbs them."""

    def reset(self) -> None:
        """Rewind all port sequences (fresh run)."""
        self._sequence.clear()
