"""The simulated CMP: record-mode and replay-mode run loops.

``ChunkMachine`` wires together the chunk-building processors, the
shared memory, the commit arbiter (with the mode- and phase-appropriate
ordering policy), the directory, the DMA engine and the interrupt
delivery path, and drives them with the discrete-event engine.

The same machine runs both phases:

* **Record**: external events (interrupts, DMA, I/O values) come from
  the workload and the modeled device; the arbiter uses the mode's
  recording policy; a :class:`~repro.core.recorder.Recorder` captures
  the PI/CS/Interrupt/IO/DMA logs.
* **Replay**: external events come *only* from the recording; the
  arbiter enforces the recorded interleaving (PI log order, stratum
  quotas, or PicoLog's predefined round-robin); chunk sizes follow the
  CS log; optional timing perturbation exercises the paper's
  replay-speed methodology without being allowed to change the
  replayed architectural state.

Event-ordering rules that matter for correctness are documented inline;
they are the product of the commit protocol of Figure 4 plus the
exceptional-event handling of Section 4.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.stats import RunStats
from repro.chunks.cache import CacheConfig, SharedL2Filter, SpeculativeCache
from repro.chunks.chunk import Chunk, ChunkState, TruncationReason
from repro.chunks.directory import CommitDirectory
from repro.chunks.processor import ChunkProcessor
from repro.core.arbiter import (
    ArrivalOrderPolicy,
    CommitArbiter,
    PIReplayPolicy,
    RoundRobinPolicy,
    SchedulePlan,
    SchedulePolicy,
    StrataReplayPolicy,
)
from repro.core.interval import IntervalCheckpoint, IntervalCheckpointStore
from repro.core.modes import ModeConfig
from repro.core.recorder import Recorder, Recording
from repro.core.replayer import (
    DeterminismReport,
    ReplayPerturbation,
    ReplayResult,
    ReplaySource,
    verify_determinism,
)
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    IntegrityError,
    ReplayDivergenceError,
)
from repro.machine.engine import EventEngine
from repro.machine.events import DmaTransfer, IODevice, InterruptEvent
from repro.machine.memory import MainMemory
from repro.machine.program import LOCK_SPIN_COST, Program, ThreadState
from repro.machine.timing import MachineConfig
from repro.telemetry.forensics import DivergenceContext
from repro.telemetry.tracer import NULL_TRACER, Tracer

# Event priorities: commit finalization must run before same-time
# request arrivals so a doomed chunk is squashed before it is queued.
_PRIO_FINALIZE = 0
_PRIO_DEFAULT = 1


class _RecordIOSource:
    """Record-phase I/O: values come from the modeled device."""

    def __init__(self, device: IODevice) -> None:
        self.device = device

    def io_load(self, proc: int, port: int) -> int:
        return self.device.load(port)

    def io_store(self, proc: int, port: int, value: int) -> None:
        self.device.store(port, value)


class _ReplayIOSource:
    """Replay-phase I/O: values come from the I/O log only."""

    def __init__(self, source: ReplaySource) -> None:
        self.source = source

    def io_load(self, proc: int, port: int) -> int:
        return self.source.io_load(proc, port)

    def io_store(self, proc: int, port: int, value: int) -> None:
        self.source.io_store(proc, port, value)


@dataclass
class RunResult:
    """Raw outcome of one machine run (shared by record and replay)."""

    stats: RunStats
    fingerprints: list[tuple]
    per_proc_fingerprints: dict[int, list[tuple]]
    final_memory: dict[int, int]
    final_thread_keys: dict[int, tuple]


class ChunkMachine:
    """An N-processor chunk-based CMP (BulkSC substrate + DeLorean)."""

    def __init__(
        self,
        program: Program,
        machine_config: MachineConfig,
        mode_config: ModeConfig,
        replay_source: ReplaySource | None = None,
        perturbation: ReplayPerturbation | None = None,
        use_strata: bool = False,
        stochastic_overflow_rate: float = 0.0,
        checkpoint_every: int = 0,
        start_checkpoint: IntervalCheckpoint | None = None,
        stop_after_commits: int = 0,
        tracer: Tracer | None = None,
        schedule: SchedulePlan | None = None,
    ) -> None:
        if program.num_threads > machine_config.num_processors:
            raise ConfigurationError(
                f"program has {program.num_threads} threads but the "
                f"machine only {machine_config.num_processors} processors")
        self.program = program
        self.config = machine_config
        self.mode_config = mode_config
        self.replay_source = replay_source
        self.is_replay = replay_source is not None
        self.perturbation = perturbation
        self.use_strata = use_strata
        self.stochastic_overflow_rate = stochastic_overflow_rate
        if schedule is not None and schedule.is_natural:
            schedule = None
        if schedule is not None:
            if self.is_replay:
                raise ConfigurationError(
                    "schedule plans perturb the *record* arbiter; "
                    "replay follows the recorded order")
            if mode_config.mode.predefined_order:
                raise ConfigurationError(
                    f"mode {mode_config.mode.name} commits in a "
                    "predefined order with no PI log, so a forced "
                    "schedule could not be replayed; explore "
                    "predefined-order modes on their natural schedule")
        self.schedule = schedule
        self.tracer = tracer if tracer is not None else NULL_TRACER
        metrics = self.tracer.metrics
        self._m_commits = metrics.counter("chunks_committed")
        self._m_instructions = metrics.counter("instructions_committed")
        self._m_dma = metrics.counter("dma_commits")
        self._m_interrupts = metrics.counter("interrupts_delivered")
        self._m_directory_bytes = metrics.gauge("directory_bytes")
        self._m_cycles = metrics.gauge("cycles")
        self._h_chunk_instructions = metrics.histogram(
            "chunk_instructions")
        self._h_commit_wait = metrics.histogram("commit_wait_cycles")

        self.engine = EventEngine()
        if self.tracer.enabled:
            self.engine.dispatch_hook = self._sample_engine
        self.memory = MainMemory(program.initial_memory)
        shared_l2 = SharedL2Filter(machine_config.l2_lines)
        cache_config = CacheConfig(machine_config.l1_sets,
                                   machine_config.l1_ways)
        self.processors: list[ChunkProcessor] = []
        for proc_id in range(machine_config.num_processors):
            ops = (program.threads[proc_id]
                   if proc_id < program.num_threads else [])
            cache = SpeculativeCache(cache_config, shared_l2)
            self.processors.append(
                ChunkProcessor(proc_id, ops, machine_config, cache,
                               tracer=self.tracer))
        self._caches = {p.proc_id: p.cache for p in self.processors}
        # Traffic is metered at the hardware wire format of Table 5
        # (2 Kbit signatures), independent of the behavioral filter's
        # modeled hash space (see repro.chunks.signature).
        self.directory = CommitDirectory(
            line_bytes=machine_config.line_words * 8,
            signature_bytes_each=256,
        )
        self.io_device = IODevice(program.io_seed)
        self._rng = random.Random(machine_config.seed)
        self._noise_rng = (random.Random(perturbation.seed)
                           if perturbation else None)

        self.recorder = (None if self.is_replay
                         else Recorder(machine_config, mode_config,
                                       tracer=self.tracer))
        if self.is_replay:
            self.io_source = _ReplayIOSource(replay_source)
        else:
            self.io_source = _RecordIOSource(self.io_device)

        # Interval-replay state must exist before the arbiter is built
        # (the replay policies slice their logs at the checkpoint).
        self._checkpoint_every = checkpoint_every
        self.interval_checkpoints = IntervalCheckpointStore(
            interval=checkpoint_every)
        self.start_checkpoint = start_checkpoint
        # Bounded interval replay: halt after this many logical
        # commits (0 = run to completion).
        self._stop_after = stop_after_commits
        self._stopped = False
        self.arbiter = self._build_arbiter()
        self.stats = RunStats()
        self._fingerprints: list[tuple] = []
        self._per_proc_fingerprints: dict[int, list[tuple]] = {
            p.proc_id: [] for p in self.processors}
        self._per_proc_fingerprints[self.config.dma_proc_id] = []
        self._piece_accum: dict[int, dict] = {}
        # Replay: proc_id -> in-flight split-chunk state, so a squashed
        # continuation piece is rebuilt with its *remaining* budget.
        self._pending_continuations: dict[int, dict] = {}
        self._dma_sequence = 0
        self._stall_since: dict[int, float | None] = {
            p.proc_id: None for p in self.processors}
        self._finished = False
        self._started = False
        # Debugger hook: an object with ``on_commit(chunk, fingerprint,
        # count)``, ``on_dma(writes, fingerprint, count)``,
        # ``on_squash(proc, victim_seqs, cause)`` and
        # ``on_interrupt(proc, event)`` methods (see
        # :mod:`repro.debugger.controller`).  ``on_commit``/``on_dma``
        # fire at the exact linearization point of each global commit:
        # committed memory holds precisely the first ``count`` commits'
        # writes, so an observer that pauses the machine there sees the
        # architectural state at that GCC.  None when unobserved.
        self.observer = None
        # Interval replay (Appendix B): restore the checkpointed
        # committed state once everything else is wired.
        if start_checkpoint is not None:
            self._restore_interval_checkpoint(start_checkpoint)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_arbiter(self) -> CommitArbiter:
        mode = self.mode_config.mode
        def token_wakeup(time: float) -> None:
            self.engine.schedule_at(
                time, lambda: self.arbiter.try_grant(self.engine.now))

        if not self.is_replay:
            if mode.predefined_order:
                policy = RoundRobinPolicy(
                    self.config.num_processors,
                    is_active=self._proc_active,
                    hop_cycles=self.config.token_hop_cycles,
                    wakeup=token_wakeup,
                )
            elif self.schedule is not None:
                policy = SchedulePolicy(
                    self.schedule,
                    self.config.num_processors,
                    is_active=self._proc_active,
                )
            else:
                policy = ArrivalOrderPolicy()
            max_concurrent = self.config.max_concurrent_commits
        else:
            recording = self.replay_source.recording
            if mode.predefined_order:
                # The replay hypervisor layer slows arbitration (30 ->
                # 50 cycles, Section 6.2.1); token hops are part of the
                # same arbitration path and scale with it.
                hop_scale = (self.config.replay_arbitration_roundtrip
                             / max(1, self.config.arbitration_roundtrip))
                policy = RoundRobinPolicy(
                    self.config.num_processors,
                    is_active=self._proc_active,
                    slot_gate=lambda proc: self.replay_source.gate_for(
                        proc, self.processors[proc].committed_count),
                    grant_count=lambda: self.arbiter.grant_count,
                    # Recorded DMA bursts own their commit slot: no
                    # processor grant may overtake a due burst (it is
                    # applied by _drain_replay_dma once the pipeline
                    # quiesces, keeping the recorded global order).
                    dma_hold=lambda: self.replay_source.dma_due_at_slot(
                        self.arbiter.grant_count),
                    hop_cycles=self.config.token_hop_cycles * hop_scale,
                    wakeup=token_wakeup,
                )
                if self.start_checkpoint is not None:
                    policy.pointer = self._resume_token_pointer(
                        self.start_checkpoint)
            elif self.use_strata:
                if self.start_checkpoint is not None:
                    raise ConfigurationError(
                        "stratified replay cannot start from an "
                        "interval checkpoint (a checkpoint may fall "
                        "inside a stratum)")
                policy = StrataReplayPolicy(
                    recording.strata,
                    dma_slot=self.config.dma_proc_id,
                )
            else:
                entries = recording.pi_log.entries
                if self.start_checkpoint is not None:
                    # One PI entry per logical commit (incl. DMA), so
                    # the slice point is exactly the checkpoint's GCC.
                    entries = entries[self.start_checkpoint.commit_index:]
                policy = PIReplayPolicy(
                    entries,
                    dma_proc_id=self.config.dma_proc_id,
                )
            disable_parallel = (self.perturbation is not None
                                and self.perturbation
                                .disable_parallel_commit)
            max_concurrent = (1 if disable_parallel
                              else self.config.max_concurrent_commits)
        return CommitArbiter(
            policy=policy,
            max_concurrent=max_concurrent,
            on_grant=self._on_grant,
            dma_proc_id=self.config.dma_proc_id,
            head_filter=self._is_commit_head,
            tracer=self.tracer,
        )

    def _sample_engine(self, now: float, depth: int,
                       processed: int) -> None:
        """Engine dispatch hook (installed only when tracing)."""
        self.tracer.counter("engine", "queue_depth", now, depth=depth)

    def _proc_active(self, proc_id: int) -> bool:
        """Architectural 'can ever commit again' predicate.

        In replay a processor with un-injected logged interrupts is
        still active even if its thread has finished.
        """
        if self.processors[proc_id].has_uncommitted_work():
            return True
        if self.is_replay:
            return self.replay_source.has_pending_interrupts(proc_id)
        return False

    def _is_commit_head(self, chunk: Chunk) -> bool:
        """A chunk may only be granted when it is its processor's
        oldest uncommitted chunk (same-processor commits are ordered)."""
        if chunk.processor == self.config.dma_proc_id:
            return True
        outstanding = self.processors[chunk.processor].outstanding
        return bool(outstanding) and outstanding[0] is chunk

    def _restore_interval_checkpoint(
            self, checkpoint: IntervalCheckpoint) -> None:
        """Load a mid-recording committed state (replay phase)."""
        if not self.is_replay:
            raise ConfigurationError(
                "interval checkpoints restore only into replay machines")
        self.memory.restore(checkpoint.memory_image)
        for proc in self.processors:
            state = checkpoint.thread_states.get(proc.proc_id)
            if state is not None:
                proc.spec_state.restore(state)
            committed = checkpoint.committed_counts.get(proc.proc_id, 0)
            proc.committed_count = committed
            proc.next_seq = committed + 1
        # Continue the DMA fingerprint numbering and the PicoLog
        # commit-slot counter from where the recording's prefix left
        # them, so slot gates and fingerprints align.
        self._dma_sequence = checkpoint.dma_consumed
        self.arbiter.grant_count = checkpoint.processor_grants

    def _resume_token_pointer(
            self, checkpoint: IntervalCheckpoint) -> int:
        """PicoLog token position after the checkpointed commit: the
        successor of the last processor granted in the prefix (idle
        skipping is architectural and replays on first arbitration)."""
        recording = self.replay_source.recording
        for fingerprint in reversed(
                recording.fingerprints[:checkpoint.commit_index]):
            if fingerprint[0] != "dma":
                return (fingerprint[0] + 1) % self.config.num_processors
        return 0

    def _maybe_halt(self) -> None:
        """Interval replay of I(n, m): after m commits, stop granting
        and stop building; in-flight speculation is abandoned."""
        if (self._stop_after
                and len(self._fingerprints) >= self._stop_after
                and not self._stopped):
            self._stopped = True
            self.arbiter.halt()

    def _maybe_interval_checkpoint(self) -> None:
        """Record phase: capture committed state every N commits."""
        if (self.recorder is None or not self._checkpoint_every
                or len(self._fingerprints) % self._checkpoint_every):
            return
        thread_states = {}
        committed_counts = {}
        for proc in self.processors:
            if proc.outstanding:
                state = proc.outstanding[0].start_state.snapshot()
            else:
                state = proc.spec_state.snapshot()
            thread_states[proc.proc_id] = state
            committed_counts[proc.proc_id] = proc.committed_count
        self.interval_checkpoints.add(IntervalCheckpoint(
            commit_index=len(self._fingerprints),
            memory_image=self.memory.snapshot(),
            thread_states=thread_states,
            committed_counts=committed_counts,
            io_consumed={
                proc: len(log)
                for proc, log in self.recorder.io_logs.items()},
            dma_consumed=len(self.recorder.dma_log.entries),
            label=f"gcc{len(self._fingerprints)}",
        ))

    @property
    def _arbitration_roundtrip(self) -> float:
        if self.is_replay:
            return self.config.replay_arbitration_roundtrip
        return self.config.arbitration_roundtrip

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def start(self, max_events: int | None = None) -> int:
        """Arm the machine without draining the event queue.

        Schedules the external-event streams (record phase), builds the
        first chunks, and applies any replay DMA due at GCC 0.  Returns
        the event budget for the run.  :meth:`run` calls this and then
        drains the queue; the debugger's replay controller calls it and
        then pumps :meth:`EventEngine.step` itself so it can pause at
        exact commit boundaries.
        """
        if self._finished or self._started:
            raise ConfigurationError("a ChunkMachine runs only once")
        self._started = True
        if max_events is None:
            ops = self.program.total_static_ops()
            max_events = 500_000 + 200 * ops
        if not self.is_replay:
            for event in self.program.interrupts:
                self.engine.schedule_at(
                    event.time,
                    lambda e=event: self._deliver_interrupt(e))
            for transfer in self.program.dma_transfers:
                self.engine.schedule_at(
                    transfer.time,
                    lambda t=transfer: self._dma_arrive(t))
        for proc in self.processors:
            self._kick(proc.proc_id)
        if self.is_replay:
            self._drain_replay_dma()
        return max_events

    def pause_at_boundary(self) -> None:
        """Debugger support: freeze the commit pipeline at the current
        global commit boundary.

        Called from an observer's ``on_commit``/``on_dma`` while the
        finalizing dispatch is still on the stack: granting stops,
        replay DMA draining stops, and chunk building stops, so no
        further commit can finalize.  Events already scheduled stay
        queued -- whoever drives the engine must stop dispatching (the
        controller's pump loop checks :attr:`paused` after every
        :meth:`EventEngine.step`).  :meth:`resume_from_boundary`
        reverses the pause exactly.
        """
        self._stopped = True
        self.arbiter.halt()

    @property
    def paused(self) -> bool:
        """True while the machine is paused at a commit boundary."""
        return self._stopped

    def resume_from_boundary(self) -> None:
        """Debugger support: undo :meth:`pause_at_boundary`.

        Re-opens the arbiter, rebuilds any chunks the pause blocked,
        and re-arbitrates.  The machine continues exactly where it
        stopped: in-flight events were never cancelled, only left
        undispatched.
        """
        self._stopped = False
        self.arbiter.halted = False
        for proc in self.processors:
            self._kick(proc.proc_id)
        if self.is_replay:
            self._drain_replay_dma()
        else:
            self.arbiter.try_grant(self.engine.now)

    def run(self, max_events: int | None = None) -> RunResult:
        """Execute the program to completion; returns the run capture."""
        try:
            budget = self.start(max_events)
            self.engine.run(budget)
            self._check_drained()
        except (ReplayDivergenceError, DeadlockError,
                IntegrityError) as error:
            # Snapshot the partial run for the forensics layer before
            # the error unwinds past the machine.
            error.context = self._divergence_context()
            raise
        self._finished = True
        return self._collect()

    def _divergence_context(self) -> DivergenceContext:
        """The partial-run snapshot attached to fatal replay errors."""
        return DivergenceContext(
            cycle=self.engine.now,
            fingerprints=list(self._fingerprints),
            per_proc_fingerprints={
                proc: list(entries) for proc, entries
                in self._per_proc_fingerprints.items()},
            committed_counts={
                p.proc_id: p.committed_count for p in self.processors},
            grants_log=list(self.arbiter.grants_log),
        )

    def _check_drained(self) -> None:
        if self._stopped:
            return  # bounded replay legally abandons in-flight work
        blocked = [p.proc_id for p in self.processors
                   if p.has_uncommitted_work()]
        if blocked or self.arbiter.has_work():
            raise DeadlockError(
                f"machine stopped with work remaining: processors "
                f"{blocked} blocked, arbiter "
                f"{'busy' if self.arbiter.has_work() else 'idle'} at "
                f"cycle {self.engine.now:.0f}")
        if self.is_replay:
            if hasattr(self.arbiter.policy, "finish"):
                self.arbiter.policy.finish()

    def _collect(self) -> RunResult:
        self.stats.cycles = self.engine.now
        self._m_cycles.set(self.engine.now)
        for proc in self.processors:
            self.stats.merge_processor(proc.proc_id, proc.stats)
        if isinstance(self.arbiter.policy, RoundRobinPolicy):
            summary = self.arbiter.policy.stats.summary()
            # Ready-processor and commit-parallelism averages are
            # sampled machine-side at every grant.
            summary["ready_procs_avg"] = self.stats.avg_ready_procs
            summary["actual_commit_avg"] = (
                self.stats.avg_commit_parallelism)
            self.stats.token_summary = summary
        total_refills = sum(
            c.l2_hits + c.memory_accesses for c in self._caches.values())
        self.directory.on_data_refill(total_refills)
        self.stats.traffic = self.directory.traffic.as_dict()
        self._m_directory_bytes.set(self.directory.traffic.total_bytes)
        return RunResult(
            stats=self.stats,
            fingerprints=self._fingerprints,
            per_proc_fingerprints=self._per_proc_fingerprints,
            final_memory=self.memory.nonzero_words(),
            final_thread_keys={
                p.proc_id: p.committed_fingerprint_state()
                for p in self.processors},
        )

    # ------------------------------------------------------------------
    # Chunk construction
    # ------------------------------------------------------------------

    def _kick(self, proc_id: int) -> None:
        """Build as many chunks as the processor's window allows."""
        proc = self.processors[proc_id]
        if self._stopped:
            return
        now = self.engine.now
        self._relaunch_continuation(proc, now)
        while True:
            if self.is_replay:
                event = self.replay_source.maybe_interrupt(
                    proc_id, proc.next_seq)
                if event is not None:
                    proc.pending_handlers.append(event)
                    if self.observer is not None:
                        self.observer.on_interrupt(proc_id, event)
            if not proc.can_build():
                break
            self._clear_stall(proc_id, now)
            target, reason, forced = self._chunk_plan(proc)
            chunk = proc.build_chunk(
                now, target, reason, forced, self.memory)
            if (self.is_replay
                    and chunk.truncation is TruncationReason.CACHE_OVERFLOW
                    and chunk.instructions < target
                    and chunk.pending_boundary_op is None
                    and not chunk.end_state.exhausted):
                # Unexpected replay overflow: the remainder must commit
                # back-to-back as a second piece (Section 4.2.3); block
                # successors until the logical chunk completes.
                chunk.blocks_successors = True
            self._apply_replay_timing_noise(chunk)
            start = max(now, proc.exec_free_time)
            done = start + chunk.exec_cycles
            proc.exec_free_time = done
            if self.tracer.enabled:
                self._trace_execute(chunk, start)
            self.engine.schedule(done - now,
                                 lambda c=chunk: self._complete(c))
        self._note_stall(proc_id, now)

    def _trace_execute(self, chunk: Chunk, start: float) -> None:
        """Emit one execute span for a just-built chunk (or piece)."""
        name = f"exec c{chunk.logical_seq}"
        if chunk.piece_index:
            name += f".{chunk.piece_index}"
        self.tracer.span(
            f"p{chunk.processor}", name, start, chunk.exec_cycles,
            category="execute", seq=chunk.logical_seq,
            piece=chunk.piece_index, instructions=chunk.instructions,
            target=chunk.target_size, handler=chunk.is_handler,
            truncation=chunk.truncation.name if chunk.truncation else "")

    def _chunk_plan(self, proc: ChunkProcessor) -> \
            tuple[int, TruncationReason, int | None]:
        """Instruction budget, at-budget truncation reason, and
        stochastic early-overflow point for the next chunk."""
        seq = proc.next_seq
        if self.is_replay:
            target, reason = self.replay_source.chunk_target(
                proc.proc_id, seq)
            forced = self._stochastic_overflow(target, self._noise_rng)
            return target, reason, forced
        mode = self.mode_config.mode
        target = self.mode_config.standard_chunk_size
        reason = TruncationReason.SIZE_LIMIT
        if (mode.logs_every_chunk_size
                and self._rng.random()
                < self.mode_config.variable_truncation_rate):
            target = self._rng.randint(
                self.mode_config.min_artificial_chunk, target)
        squashes = proc.squash_count_for(seq)
        limit = self.config.squash_retry_limit
        if squashes >= limit and not mode.predefined_order:
            # Repeated chunk collision: progressively shrink the chunk
            # until it can commit (Section 4.2.3).
            reductions = squashes - limit + 1
            target = max(64, target >> reductions)
            reason = TruncationReason.COLLISION_REDUCED
        forced = self._stochastic_overflow(target, self._rng)
        return target, reason, forced

    def _stochastic_overflow(self, target: int,
                             rng: random.Random | None) -> int | None:
        """Early-truncation point modeling wrong-path/multi-chunk cache
        interference (see :mod:`repro.chunks.cache`).

        The point is never below the largest op unit (a lock-spin
        iteration): a truncated chunk must contain at least one
        instruction, because the CS log's zero size is reserved as the
        distance-extension sentinel.
        """
        if rng is None or self.stochastic_overflow_rate <= 0:
            return None
        if rng.random() >= self.stochastic_overflow_rate:
            return None
        if target <= 8:
            return None
        floor = max(LOCK_SPIN_COST, target // 4)
        if floor >= target:
            return None
        return rng.randint(floor, target - 1)

    def _apply_replay_timing_noise(self, chunk: Chunk) -> None:
        """Replay-only timing effects: the hypervisor's per-chunk
        boundary validation plus the 1.5% hit<->miss flips of
        Section 6.2.1."""
        if not self.is_replay or self.perturbation is None:
            return
        chunk.exec_cycles += self.perturbation.chunk_validation_cycles
        rate = self.perturbation.cache_flip_rate
        if rate <= 0:
            return
        accesses = len(chunk.read_lines) + len(chunk.write_lines)
        timing = self.config.timing
        swing = timing.memory_cycles * timing.chunk_load_exposure
        delta = 0.0
        for _ in range(accesses):
            if self._noise_rng.random() < rate:
                delta += swing if self._noise_rng.random() < 0.5 else -swing
        floor = timing.instruction_cycles(chunk.instructions) * 0.5
        chunk.exec_cycles = max(floor, chunk.exec_cycles + delta)

    def _clear_stall(self, proc_id: int, now: float) -> None:
        since = self._stall_since[proc_id]
        if since is not None:
            self.processors[proc_id].stats.stall_cycles += max(
                0.0, now - since)
            self._stall_since[proc_id] = None

    def _note_stall(self, proc_id: int, now: float) -> None:
        """Mark a processor that filled its chunk window and idles."""
        proc = self.processors[proc_id]
        if self._stall_since[proc_id] is not None:
            return
        window_full = (len(proc.outstanding)
                       >= self.config.simultaneous_chunks)
        blocked_io = (proc.outstanding
                      and proc.outstanding[-1].pending_boundary_op
                      is not None)
        if (window_full or blocked_io) and proc.has_uncommitted_work():
            self._stall_since[proc_id] = max(now, proc.exec_free_time)

    # ------------------------------------------------------------------
    # Commit pipeline
    # ------------------------------------------------------------------

    def _complete(self, chunk: Chunk) -> None:
        """A chunk finished executing: request commit permission."""
        if chunk.state is ChunkState.SQUASHED:
            return
        chunk.state = ChunkState.COMPLETED
        chunk.complete_time = self.engine.now
        self.directory.on_commit_request()
        delay = self._arbitration_roundtrip / 2
        if (self.is_replay and self.perturbation is not None
                and self._noise_rng.random()
                < self.perturbation.commit_stall_probability):
            delay += self._noise_rng.randint(
                self.perturbation.commit_stall_min_cycles,
                self.perturbation.commit_stall_max_cycles)
        self.engine.schedule(
            delay, lambda: self._arbiter_request(chunk))
        self._kick(chunk.processor)

    def _arbiter_request(self, chunk: Chunk) -> None:
        self.arbiter.receive_request(chunk, self.engine.now)
        if self.is_replay:
            self._drain_replay_dma()

    def _on_grant(self, chunk: Chunk, now: float) -> None:
        """Arbiter callback: a commit was granted (Figure 4 msg 3/6)."""
        self.directory.on_grant()
        wait = max(0.0, now - chunk.complete_time)
        self._h_commit_wait.observe(wait)
        if self.tracer.enabled and wait > 0:
            track = ("dma" if chunk.processor == self.config.dma_proc_id
                     else f"p{chunk.processor}")
            self.tracer.span(
                track, f"wait c{chunk.logical_seq}",
                chunk.complete_time, wait, category="wait",
                seq=chunk.logical_seq, piece=chunk.piece_index)
        ready = sum(
            1 for p in self.processors
            if p.outstanding and p.outstanding[0].state in (
                ChunkState.COMPLETED, ChunkState.REQUESTED,
                ChunkState.COMMITTING))
        self.stats.ready_procs_samples.append(ready)
        self.stats.commit_parallelism_samples.append(
            len(self.arbiter.committing))
        if self.recorder is not None:
            if chunk.processor == self.config.dma_proc_id:
                self.recorder.on_dma_grant(chunk.write_signature)
            else:
                self.recorder.on_grant(chunk)
        grant_latency = self._arbitration_roundtrip / 2
        self.engine.schedule(
            grant_latency + self.config.commit_propagation_cycles,
            lambda: self._finalize_commit(chunk),
            priority=_PRIO_FINALIZE)

    def _finalize_commit(self, chunk: Chunk) -> None:
        """A commit propagated: apply writes, squash, log, free slot."""
        now = self.engine.now
        self.memory.apply(chunk.write_buffer)
        self.directory.propagate_commit(chunk, self._caches)
        self._squash_remote_conflicts(chunk, now)
        chunk.state = ChunkState.COMMITTED
        chunk.commit_time = now
        if chunk.processor == self.config.dma_proc_id:
            self._finalize_dma_commit(chunk, now)
            return
        proc = self.processors[chunk.processor]
        had_boundary = chunk.pending_boundary_op is not None
        proc.on_commit(chunk, self.io_source)
        if had_boundary:
            # The uncached instruction executes non-speculatively
            # between chunks and exposes its full device round trip
            # (Section 4.2.2); the next chunk cannot start before it.
            proc.exec_free_time = (
                max(now, proc.exec_free_time)
                + self.config.timing.memory_cycles)
        if self.recorder is not None:
            self.recorder.on_commit(chunk)
        self._m_commits.inc()
        self._m_instructions.inc(chunk.instructions)
        self._h_chunk_instructions.observe(chunk.instructions)
        if self.tracer.enabled:
            self._trace_commit(chunk, now)
        needs_continuation = chunk.blocks_successors
        self._capture_fingerprint(chunk, needs_continuation)
        if chunk.piece_index > 0 and not needs_continuation:
            self._pending_continuations.pop(chunk.processor, None)
        if needs_continuation:
            # Reserve the arbiter and build the continuation *before*
            # freeing the commit slot, so no foreign commit can slip
            # between the two pieces of the logical chunk.
            self._start_continuation(chunk, now)
        if self.is_replay:
            # Any DMA the ordering log places here must be applied
            # before the next grant, against a quiescent commit
            # pipeline -- otherwise its writes could race an in-flight
            # commit they were ordered against.
            self.arbiter.release(chunk)
            self._drain_replay_dma()
            for other in self.processors:
                self._kick(other.proc_id)
        else:
            self.arbiter.commit_finished(chunk, now)
            self._kick(chunk.processor)

    def _trace_commit(self, chunk: Chunk, now: float) -> None:
        """One commit span per committed piece, plus the progress and
        traffic counters.  Span counts per processor track equal the
        run's per-processor ``chunks_committed`` exactly (the Perfetto
        acceptance check)."""
        name = f"commit c{chunk.logical_seq}"
        if chunk.piece_index:
            name += f".{chunk.piece_index}"
        self.tracer.span(
            f"p{chunk.processor}", name, chunk.grant_time,
            max(0.0, now - chunk.grant_time), category="commit",
            seq=chunk.logical_seq, piece=chunk.piece_index,
            instructions=chunk.instructions, slot=chunk.grant_slot)
        self.tracer.counter(
            "directory", "traffic_bytes", now,
            total=self.directory.traffic.total_bytes)
        if self.is_replay:
            # Global commits fully captured so far (split-chunk pieces
            # land when their last piece commits).
            self.tracer.counter(
                "replay", "commits", now,
                total=len(self._fingerprints))

    def _squash_remote_conflicts(self, committing: Chunk,
                                 now: float) -> None:
        flush = self.config.timing.squash_flush_cycles
        cause = ("collision:dma"
                 if committing.processor == self.config.dma_proc_id
                 else f"collision:p{committing.processor}")
        for other in self.processors:
            if other.proc_id == committing.processor:
                continue
            victims = other.squash_if_conflicts(committing, now,
                                                cause=cause)
            if victims:
                for victim in victims:
                    self.directory.on_squash(victim)
                if self.observer is not None:
                    self.observer.on_squash(
                        other.proc_id,
                        [v.logical_seq for v in victims], cause)
                other.exec_free_time = now + flush
                self.arbiter.drop_stale()
                self._kick(other.proc_id)

    def _start_continuation(self, parent: Chunk, now: float) -> None:
        """Commit the rest of a split logical chunk immediately after
        its short piece (Section 4.2.3)."""
        proc = self.processors[parent.processor]
        remaining = max(1, parent.target_size - parent.instructions)
        _, reason = self.replay_source.chunk_target(
            parent.processor, parent.logical_seq)
        self._pending_continuations[parent.processor] = {
            "seq": parent.logical_seq,
            "piece": parent.piece_index + 1,
            "remaining": remaining,
            "reason": reason,
        }
        self.arbiter.reserve_continuation(parent.processor)
        self._launch_continuation(proc, now)

    def _relaunch_continuation(self, proc: ChunkProcessor,
                               now: float) -> None:
        """Rebuild a squashed continuation piece with its remaining
        budget (a remote commit may legally squash an ungranted
        piece; its re-execution reads the post-commit state)."""
        pending = self._pending_continuations.get(proc.proc_id)
        if pending is None:
            return
        alive = any(
            c.logical_seq == pending["seq"] and c.piece_index > 0
            for c in proc.outstanding)
        if not alive:
            self._launch_continuation(proc, now)

    def _launch_continuation(self, proc: ChunkProcessor,
                             now: float) -> None:
        pending = self._pending_continuations[proc.proc_id]
        chunk = proc.build_continuation(
            pending["seq"], pending["piece"], now,
            pending["remaining"], pending["reason"], self.memory)
        if (chunk.truncation is TruncationReason.CACHE_OVERFLOW
                and chunk.instructions < pending["remaining"]
                and chunk.pending_boundary_op is None
                and not chunk.end_state.exhausted):
            chunk.blocks_successors = True
        self._apply_replay_timing_noise(chunk)
        start = max(now, proc.exec_free_time)
        done = start + chunk.exec_cycles
        proc.exec_free_time = done
        if self.tracer.enabled:
            self._trace_execute(chunk, start)
        self.engine.schedule(done - now,
                             lambda c=chunk: self._complete(c))

    def _capture_fingerprint(self, chunk: Chunk,
                             needs_continuation: bool) -> None:
        """Emit (or accumulate, for split chunks) the commit digest."""
        proc_id = chunk.processor
        accum = self._piece_accum.get(proc_id)
        if chunk.piece_index == 0 and not needs_continuation:
            fingerprint = chunk.commit_fingerprint()
            self._fingerprints.append(fingerprint)
            self._per_proc_fingerprints[proc_id].append(fingerprint)
            if self.observer is not None:
                self.observer.on_commit(chunk, fingerprint,
                                        len(self._fingerprints))
            self._maybe_interval_checkpoint()
            self._maybe_halt()
            return
        if chunk.piece_index == 0:
            self._piece_accum[proc_id] = {
                "seq": chunk.logical_seq,
                "is_handler": chunk.is_handler,
                "instructions": chunk.instructions,
                "writes": dict(chunk.write_buffer),
            }
            return
        if accum is None or accum["seq"] != chunk.logical_seq:
            raise DeadlockError(
                f"continuation piece without parent on processor "
                f"{proc_id}")
        accum["instructions"] += chunk.instructions
        accum["writes"].update(chunk.write_buffer)
        if needs_continuation:
            return
        end_key = (chunk.end_state.architectural_key()
                   if chunk.end_state is not None else None)
        fingerprint = (
            proc_id,
            accum["seq"],
            0,
            accum["is_handler"],
            accum["instructions"],
            tuple(sorted(accum["writes"].items())),
            end_key,
        )
        del self._piece_accum[proc_id]
        self._fingerprints.append(fingerprint)
        self._per_proc_fingerprints[proc_id].append(fingerprint)
        if self.observer is not None:
            self.observer.on_commit(chunk, fingerprint,
                                    len(self._fingerprints))
        self._maybe_halt()

    # ------------------------------------------------------------------
    # Interrupts
    # ------------------------------------------------------------------

    def _deliver_interrupt(self, event: InterruptEvent) -> None:
        """Record phase: an external interrupt arrives."""
        now = self.engine.now
        proc = self.processors[event.processor]
        self._m_interrupts.inc()
        if self.tracer.enabled:
            self.tracer.instant(
                f"p{event.processor}", f"irq v{event.vector}", now,
                category="interrupt", vector=event.vector,
                high_priority=event.high_priority)
        if self.observer is not None:
            self.observer.on_interrupt(event.processor, event)
        victims = proc.receive_interrupt(event, now)
        if victims:
            for victim in victims:
                self.directory.on_squash(victim)
            if self.observer is not None:
                self.observer.on_squash(
                    event.processor,
                    [v.logical_seq for v in victims], "interrupt")
            proc.exec_free_time = (
                now + self.config.timing.squash_flush_cycles)
            self.arbiter.drop_stale()
        self._kick(event.processor)

    # ------------------------------------------------------------------
    # DMA
    # ------------------------------------------------------------------

    def _make_dma_chunk(self, writes: dict[int, int]) -> Chunk:
        chunk = Chunk(
            processor=self.config.dma_proc_id,
            logical_seq=self._dma_sequence + 1,
            start_state=ThreadState(thread_id=self.config.dma_proc_id),
            signature_config=self.config.signature,
        )
        chunk.write_buffer = dict(writes)
        for address in writes:
            chunk.record_write(self.config.line_of(address))
        chunk.state = ChunkState.COMPLETED
        return chunk

    def _dma_arrive(self, transfer: DmaTransfer) -> None:
        """Record phase: the DMA engine requests commit permission."""
        chunk = self._make_dma_chunk(transfer.writes)
        chunk.complete_time = self.engine.now
        self.directory.on_commit_request()
        self.engine.schedule(
            self._arbitration_roundtrip / 2,
            lambda: self.arbiter.receive_request(chunk, self.engine.now))

    def _finalize_dma_commit(self, chunk: Chunk, now: float) -> None:
        self._dma_sequence += 1
        self.stats.dma_commits += 1
        self._m_dma.inc()
        if self.tracer.enabled:
            self.tracer.span(
                "dma", f"dma burst {self._dma_sequence}",
                chunk.grant_time, max(0.0, now - chunk.grant_time),
                category="dma", burst=self._dma_sequence,
                writes=len(chunk.write_buffer))
        if self.recorder is not None:
            self.recorder.on_dma_commit(
                dict(chunk.write_buffer), grant_slot=chunk.grant_slot)
        fingerprint = ("dma", self._dma_sequence,
                       tuple(sorted(chunk.write_buffer.items())))
        self._fingerprints.append(fingerprint)
        self._per_proc_fingerprints[self.config.dma_proc_id].append(
            fingerprint)
        if self.observer is not None:
            self.observer.on_dma(dict(chunk.write_buffer), fingerprint,
                                 len(self._fingerprints))
        self._maybe_interval_checkpoint()
        self._maybe_halt()
        self.arbiter.commit_finished(chunk, now)

    def _apply_dma_replay(self, writes: dict[int, int]) -> None:
        """Replay phase: apply a logged DMA burst directly."""
        now = self.engine.now
        chunk = self._make_dma_chunk(writes)
        self.memory.apply(writes)
        self.directory.propagate_commit(chunk, self._caches)
        self._squash_remote_conflicts(chunk, now)
        self._dma_sequence += 1
        self.stats.dma_commits += 1
        self._m_dma.inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "dma", f"dma burst {self._dma_sequence}", now,
                category="dma", burst=self._dma_sequence,
                writes=len(writes))
        fingerprint = ("dma", self._dma_sequence,
                       tuple(sorted(writes.items())))
        self._fingerprints.append(fingerprint)
        self._per_proc_fingerprints[self.config.dma_proc_id].append(
            fingerprint)
        if self.observer is not None:
            self.observer.on_dma(dict(writes), fingerprint,
                                 len(self._fingerprints))
        self._maybe_halt()

    def _drain_replay_dma(self) -> None:
        """Apply every DMA burst the ordering log says is due now.

        DMA data is applied only against a quiescent commit pipeline:
        an in-flight commit was granted *before* this DMA in the
        recorded order and must make its writes visible first.
        """
        policy = self.arbiter.policy
        while (not self._stopped
               and not self.arbiter.committing
               and not self.arbiter.has_reservation):
            if (hasattr(policy, "next_is_dma") and policy.next_is_dma()):
                self._apply_dma_replay(
                    self.replay_source.next_dma_writes())
                policy.consume_dma()
                continue
            if (isinstance(policy, RoundRobinPolicy)
                    and self.replay_source.dma_due_at_slot(
                        self.arbiter.grant_count)):
                self._apply_dma_replay(
                    self.replay_source.next_dma_writes())
                self.replay_source.consume_dma_slot()
                continue
            break
        self.arbiter.try_grant(self.engine.now)


# ----------------------------------------------------------------------
# High-level record / replay drivers (used by DeLoreanSystem)
# ----------------------------------------------------------------------


def finish_recording(machine: ChunkMachine, result: RunResult) -> Recording:
    """Seal a finished record-mode machine's logs into a Recording.

    Shared by :func:`record_execution`, the guard supervisor (which
    pumps the machine itself to interleave watchdog checks) and the
    exploration driver (which observes commits while pumping).
    """
    recorder = machine.recorder
    recorder.finish()
    strata = []
    if recorder.stratifier is not None:
        strata = [s.counts for s in recorder.stratifier.strata]
    return Recording(
        mode_config=machine.mode_config,
        machine_config=machine.config,
        program=machine.program,
        pi_log=recorder.pi_log,
        cs_logs=recorder.cs_logs,
        interrupt_logs=recorder.interrupt_logs,
        io_logs=recorder.io_logs,
        dma_log=recorder.dma_log,
        strata=strata,
        stratified=machine.mode_config.stratify,
        fingerprints=result.fingerprints,
        per_proc_fingerprints=result.per_proc_fingerprints,
        final_memory=result.final_memory,
        final_thread_keys=result.final_thread_keys,
        stats=result.stats,
        memory_ordering=recorder.memory_ordering_log(),
        interval_checkpoints=machine.interval_checkpoints,
    )


def record_execution(
    program: Program,
    machine_config: MachineConfig,
    mode_config: ModeConfig,
    stochastic_overflow_rate: float = 0.0,
    max_events: int | None = None,
    checkpoint_every: int = 0,
    tracer: Tracer | None = None,
    schedule: SchedulePlan | None = None,
) -> Recording:
    """Run the initial execution and produce its Recording."""
    machine = ChunkMachine(
        program, machine_config, mode_config,
        stochastic_overflow_rate=stochastic_overflow_rate,
        checkpoint_every=checkpoint_every,
        tracer=tracer,
        schedule=schedule)
    result = machine.run(max_events)
    return finish_recording(machine, result)


def build_replay_machine(
    recording: Recording,
    perturbation: ReplayPerturbation | None = None,
    use_strata: bool | None = None,
    stochastic_overflow_rate: float = 0.0,
    start_checkpoint: IntervalCheckpoint | None = None,
    stop_after: int = 0,
    tracer: Tracer | None = None,
) -> ChunkMachine:
    """A replay-configured :class:`ChunkMachine`, not yet run.

    Shared by :func:`replay_execution` and the forensics layer
    (:func:`repro.telemetry.forensics.diagnose_replay`), which needs
    direct access to the machine's replay source and partial state.
    """
    if use_strata is None:
        use_strata = recording.stratified and start_checkpoint is None
    source = ReplaySource(recording, start_checkpoint)
    machine_config = recording.machine_config
    if perturbation is not None and perturbation.single_chunk_window:
        from dataclasses import replace as _replace
        machine_config = _replace(machine_config, simultaneous_chunks=1)
    return ChunkMachine(
        recording.program,
        machine_config,
        recording.mode_config,
        replay_source=source,
        perturbation=perturbation,
        use_strata=use_strata,
        stochastic_overflow_rate=stochastic_overflow_rate,
        start_checkpoint=start_checkpoint,
        stop_after_commits=stop_after,
        tracer=tracer,
    )


def replay_execution(
    recording: Recording,
    perturbation: ReplayPerturbation | None = None,
    use_strata: bool | None = None,
    stochastic_overflow_rate: float = 0.0,
    max_events: int | None = None,
    start_checkpoint: IntervalCheckpoint | None = None,
    stop_after: int = 0,
    tracer: Tracer | None = None,
) -> ReplayResult:
    """Deterministically replay a Recording (optionally an interval
    I(n, m) from a commit-boundary checkpoint, optionally halting after
    ``stop_after`` commits) and verify it."""
    machine = build_replay_machine(
        recording,
        perturbation=perturbation,
        use_strata=use_strata,
        stochastic_overflow_rate=stochastic_overflow_rate,
        start_checkpoint=start_checkpoint,
        stop_after=stop_after,
        tracer=tracer,
    )
    source = machine.replay_source
    use_strata = machine.use_strata
    result = machine.run(max_events)
    problems = [] if stop_after else source.verify_fully_consumed()
    report = verify_determinism(
        recording,
        result.fingerprints,
        result.per_proc_fingerprints,
        result.final_memory,
        result.final_thread_keys,
        ordered=not use_strata,
        start_checkpoint=start_checkpoint,
        stop_after=stop_after,
    )
    if problems:
        report = DeterminismReport(
            matches=False,
            compared_chunks=report.compared_chunks,
            mismatches=report.mismatches + problems,
            first_mismatch=report.first_mismatch,
        )
    return ReplayResult(
        stats=result.stats,
        determinism=report,
        final_memory=result.final_memory,
        perturbation=perturbation or ReplayPerturbation.none(),
    )
