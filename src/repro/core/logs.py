"""DeLorean's logs, with the exact bit-level formats of Table 5.

The *memory-ordering log* is the pair (PI log, CS logs) -- it replaces
the Memory Races Log of FDR/RTR and the Strata log (Section 3.3).  The
*input logs* (Interrupt, I/O, DMA) capture external non-determinism and
are handled similarly by all replay schemes, so the paper's size
comparisons -- and ours -- cover only the memory-ordering log.

Every log encodes to a packed bit stream (:mod:`repro.compression.bitstream`)
and decodes back; round-trip identity is property-tested.  Compressed
sizes use the LZ77 codec, mirroring the paper's per-buffer compression
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compression.bitstream import BitReader, BitWriter
from repro.compression.entropy import (
    lru_compressed_size_bits,
    mtf_compressed_size_bits,
)
from repro.compression.lz77 import compressed_size_bits
from repro.core.modes import ExecutionMode, ModeConfig
from repro.errors import LogFormatError


class PILog:
    """Processor-Interleaving log: the total order of chunk commits.

    Each entry is just the committing processor's ID (4 bits in the
    8-processor + DMA configuration of Table 5).  The arbiter appends an
    entry when it grants commit permission; during replay it consumes
    entries to enforce the same interleaving.
    """

    def __init__(self, entry_bits: int = 4) -> None:
        if entry_bits < 1:
            raise LogFormatError("PI entries need at least one bit")
        self.entry_bits = entry_bits
        self.entries: list[int] = []

    def append(self, proc_id: int) -> None:
        """Record that ``proc_id`` was granted a chunk commit."""
        if proc_id < 0 or proc_id >= (1 << self.entry_bits):
            raise LogFormatError(
                f"procID {proc_id} does not fit in {self.entry_bits} bits")
        self.entries.append(proc_id)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def encode(self) -> tuple[bytes, int]:
        """Packed (payload, bit_length)."""
        writer = BitWriter()
        for proc_id in self.entries:
            writer.write(proc_id, self.entry_bits)
        return writer.to_bytes(), writer.bit_length

    @classmethod
    def decode(cls, payload: bytes, bit_length: int,
               entry_bits: int = 4) -> "PILog":
        """Invert :meth:`encode`."""
        log = cls(entry_bits)
        reader = BitReader(payload, bit_length)
        while reader.bits_remaining >= entry_bits:
            log.entries.append(reader.read(entry_bits))
        return log

    @property
    def size_bits(self) -> int:
        """Uncompressed size in bits."""
        return len(self.entries) * self.entry_bits

    def compressed_size_bits(self) -> int:
        """Size in bits after LZ77 compression."""
        payload, bits = self.encode()
        return compressed_size_bits(payload, raw_bits=bits)

    def mtf_compressed_size_bits(self) -> int:
        """Size in bits under the move-to-front entropy codec (see
        :mod:`repro.compression.entropy`; kept as the recency-locality
        baseline -- PI streams are anti-recent, see
        :meth:`lru_compressed_size_bits`)."""
        return mtf_compressed_size_bits(
            self.entries, 1 << self.entry_bits,
            raw_bits=self.size_bits)

    def lru_compressed_size_bits(self) -> int:
        """Size in bits under LRU-rank coding, the transform matched
        to fair commit arbitration (the least-recently-granted
        processor is the most likely next committer; see
        :class:`repro.compression.entropy.LRURankCodec`)."""
        return lru_compressed_size_bits(
            self.entries, 1 << self.entry_bits,
            raw_bits=self.size_bits)


@dataclass(frozen=True)
class CSEntry:
    """One Chunk-Size log entry.

    In Order&Size, every committed chunk gets an entry and ``distance``
    is unused (entries are in commit order).  In OrderOnly/PicoLog only
    non-deterministically truncated chunks get entries; ``distance`` is
    the number of chunks this processor committed since its previous
    truncated chunk (the paper's space-efficient stand-in for an
    absolute chunkID), and ``size`` is the truncated size.
    """

    distance: int
    size: int


class ChunkSizeLog:
    """Per-processor CS log with mode-dependent entry formats.

    * Order&Size (Table 5): a variable-sized entry per chunk -- a single
      ``1`` bit for a maximum-size chunk, else a ``0`` bit followed by
      an 11-bit size.
    * OrderOnly / PicoLog: a fixed 32-bit entry per *truncated* chunk:
      a 21/22-bit distance plus an 11/10-bit size.  Distances too large
      for the field are carried by extension entries with the reserved
      size ``0`` (real chunks are never empty in these modes' CS logs).
    """

    def __init__(self, mode_config: ModeConfig) -> None:
        self.config = mode_config
        self.entries: list[CSEntry] = []
        self._since_last_truncation = 0

    # -- recording interface ------------------------------------------

    def note_commit(self, size: int, truncated: bool) -> None:
        """Account one committed chunk.

        ``truncated`` means *non-deterministically* truncated (cache
        overflow or repeated collision); deterministic truncations are
        not logged because they reappear in replay (Section 4.2.2).
        """
        if self.config.mode.logs_every_chunk_size:
            self.entries.append(CSEntry(distance=0, size=size))
            return
        if truncated:
            self.entries.append(CSEntry(
                distance=self._since_last_truncation, size=size))
            self._since_last_truncation = 0
        else:
            self._since_last_truncation += 1

    # -- replay interface ---------------------------------------------

    def sizes_in_order(self) -> list[int]:
        """Order&Size replay: the size of every chunk, in commit order."""
        if not self.config.mode.logs_every_chunk_size:
            raise LogFormatError(
                "per-chunk sizes exist only in Order&Size mode")
        return [entry.size for entry in self.entries]

    def truncations_by_seq(self) -> dict[int, int]:
        """OrderOnly/PicoLog replay: map logical_seq -> forced size.

        Reconstructs absolute per-processor chunk sequence numbers
        (1-based commit order) from the stored distances.
        """
        if self.config.mode.logs_every_chunk_size:
            raise LogFormatError(
                "truncation map exists only in OrderOnly/PicoLog modes")
        forced: dict[int, int] = {}
        seq = 0
        for entry in self.entries:
            seq += entry.distance + 1
            forced[seq] = entry.size
        return forced

    def __len__(self) -> int:
        return len(self.entries)

    # -- serialization -------------------------------------------------

    def encode(self) -> tuple[bytes, int]:
        """Packed (payload, bit_length) in the mode's entry format."""
        writer = BitWriter()
        if self.config.mode.logs_every_chunk_size:
            max_size = self.config.standard_chunk_size
            for entry in self.entries:
                if entry.size >= max_size:
                    writer.write_flag(True)
                else:
                    writer.write_flag(False)
                    writer.write(entry.size, self.config.cs_size_bits)
            return writer.to_bytes(), writer.bit_length
        for entry in self.entries:
            if entry.size == 0:
                # Size 0 is the distance-extension sentinel; a real
                # zero-instruction truncated chunk cannot be encoded
                # (and the machine never produces one -- its stochastic
                # truncation floor is one op unit).  Failing loudly
                # beats silently losing the entry on decode.
                raise LogFormatError(
                    "cannot encode a zero-size CS entry (reserved as "
                    "the distance-extension sentinel)")
            distance = entry.distance
            while distance > self.config.max_cs_distance:
                # Extension entry: maximum distance, reserved size 0.
                writer.write(self.config.max_cs_distance,
                             self.config.cs_distance_bits)
                writer.write(0, self.config.cs_size_bits)
                distance -= self.config.max_cs_distance
            writer.write(distance, self.config.cs_distance_bits)
            writer.write(entry.size, self.config.cs_size_bits)
        return writer.to_bytes(), writer.bit_length

    @classmethod
    def decode(cls, payload: bytes, bit_length: int,
               mode_config: ModeConfig) -> "ChunkSizeLog":
        """Invert :meth:`encode`."""
        log = cls(mode_config)
        reader = BitReader(payload, bit_length)
        if mode_config.mode.logs_every_chunk_size:
            while reader.bits_remaining >= 1:
                if reader.bits_remaining < 1 + mode_config.cs_size_bits:
                    # Could be a final max-size flag or padding; a flag
                    # set to 1 is a real entry, 0 bits are padding.
                    if reader.read_flag():
                        log.entries.append(CSEntry(
                            0, mode_config.standard_chunk_size))
                    continue
                if reader.read_flag():
                    log.entries.append(CSEntry(
                        0, mode_config.standard_chunk_size))
                else:
                    log.entries.append(CSEntry(
                        0, reader.read(mode_config.cs_size_bits)))
            return log
        entry_bits = (mode_config.cs_distance_bits
                      + mode_config.cs_size_bits)
        pending_distance = 0
        while reader.bits_remaining >= entry_bits:
            distance = reader.read(mode_config.cs_distance_bits)
            size = reader.read(mode_config.cs_size_bits)
            if size == 0:
                pending_distance += distance
                continue
            log.entries.append(CSEntry(pending_distance + distance, size))
            pending_distance = 0
        return log

    @property
    def size_bits(self) -> int:
        """Uncompressed size in bits."""
        _, bits = self.encode()
        return bits

    def compressed_size_bits(self) -> int:
        """Size in bits after LZ77 compression."""
        payload, bits = self.encode()
        return compressed_size_bits(payload, raw_bits=bits)


@dataclass(frozen=True)
class InterruptEntry:
    """One Interrupt log entry: when (chunkID), what (vector/payload),
    and enough to rebuild the handler (length, priority).

    ``commit_slot`` is PicoLog-only: the global chunk-commit count at
    which the handler chunk was granted.  PicoLog has no PI log, so a
    handler that re-activates an idle processor would otherwise have no
    reproducible position in the round-robin grant sequence (compare
    the DMA commit slots of Section 3.3).  Zero elsewhere.
    """

    chunk_id: int
    vector: int
    payload: int
    handler_ops: int
    high_priority: bool
    commit_slot: int = 0


class InterruptLog:
    """Per-processor interrupt log (Section 3.3).

    Time is recorded as the processor-local chunkID of the chunk that
    initiates the handler, so replay needs no notion of wall-clock
    interrupt arrival.
    """

    _CHUNK_ID_BITS = 32
    _VECTOR_BITS = 8
    _PAYLOAD_BITS = 64
    _LENGTH_BITS = 16
    _SLOT_BITS = 48

    def __init__(self) -> None:
        self.entries: list[InterruptEntry] = []

    def append(self, entry: InterruptEntry) -> None:
        """Record a handler-initiating chunk; entries must arrive in
        commit (ascending chunkID) order."""
        if self.entries and entry.chunk_id <= self.entries[-1].chunk_id:
            raise LogFormatError(
                f"interrupt chunkIDs must be strictly increasing: "
                f"{entry.chunk_id} after {self.entries[-1].chunk_id}")
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def encode(self) -> tuple[bytes, int]:
        """Packed (payload, bit_length)."""
        writer = BitWriter()
        for entry in self.entries:
            writer.write(entry.chunk_id, self._CHUNK_ID_BITS)
            writer.write(entry.vector, self._VECTOR_BITS)
            writer.write(entry.payload, self._PAYLOAD_BITS)
            writer.write(entry.handler_ops, self._LENGTH_BITS)
            writer.write_flag(entry.high_priority)
            writer.write(entry.commit_slot, self._SLOT_BITS)
        return writer.to_bytes(), writer.bit_length

    @classmethod
    def decode(cls, payload: bytes, bit_length: int) -> "InterruptLog":
        """Invert :meth:`encode`."""
        log = cls()
        reader = BitReader(payload, bit_length)
        entry_bits = (cls._CHUNK_ID_BITS + cls._VECTOR_BITS
                      + cls._PAYLOAD_BITS + cls._LENGTH_BITS + 1
                      + cls._SLOT_BITS)
        while reader.bits_remaining >= entry_bits:
            log.entries.append(InterruptEntry(
                chunk_id=reader.read(cls._CHUNK_ID_BITS),
                vector=reader.read(cls._VECTOR_BITS),
                payload=reader.read(cls._PAYLOAD_BITS),
                handler_ops=reader.read(cls._LENGTH_BITS),
                high_priority=reader.read_flag(),
                commit_slot=reader.read(cls._SLOT_BITS),
            ))
        return log


class IOLog:
    """Per-processor I/O log: the values returned by uncached I/O loads,
    in program order (Section 4.2.2)."""

    _VALUE_BITS = 64

    def __init__(self) -> None:
        self.values: list[int] = []

    def append(self, value: int) -> None:
        """Record one I/O load value."""
        self.values.append(value & ((1 << self._VALUE_BITS) - 1))

    def __len__(self) -> int:
        return len(self.values)

    def encode(self) -> tuple[bytes, int]:
        """Packed (payload, bit_length)."""
        writer = BitWriter()
        for value in self.values:
            writer.write(value, self._VALUE_BITS)
        return writer.to_bytes(), writer.bit_length

    @classmethod
    def decode(cls, payload: bytes, bit_length: int) -> "IOLog":
        """Invert :meth:`encode`."""
        log = cls()
        reader = BitReader(payload, bit_length)
        while reader.bits_remaining >= cls._VALUE_BITS:
            log.values.append(reader.read(cls._VALUE_BITS))
        return log


@dataclass(frozen=True)
class DMAEntry:
    """One logged DMA burst: the data it wrote to memory."""

    writes: tuple[tuple[int, int], ...]  # (address, value), sorted


class DMALog:
    """Shared DMA log (Section 3.3).

    In modes with a PI log, DMA commits appear in the PI log under the
    DMA's procID and the data lives here.  In PicoLog there is no PI
    log, so the arbiter instead records each DMA's *commit slot* -- the
    global chunk-commit count at which it was granted -- alongside the
    data.
    """

    _COUNT_BITS = 16
    _ADDRESS_BITS = 32
    _VALUE_BITS = 64
    _SLOT_BITS = 48

    def __init__(self) -> None:
        self.entries: list[DMAEntry] = []
        self.commit_slots: list[int] = []  # PicoLog only

    def append(self, writes: dict[int, int],
               commit_slot: int | None = None) -> None:
        """Record one DMA burst (and its commit slot in PicoLog)."""
        self.entries.append(DMAEntry(tuple(sorted(writes.items()))))
        if commit_slot is not None:
            if self.commit_slots and commit_slot < self.commit_slots[-1]:
                # Equal slots are fine: two DMA bursts can commit
                # back-to-back between the same pair of chunk commits.
                raise LogFormatError("DMA commit slots must not decrease")
            self.commit_slots.append(commit_slot)

    def __len__(self) -> int:
        return len(self.entries)

    def encode(self) -> tuple[bytes, int]:
        """Packed (payload, bit_length)."""
        writer = BitWriter()
        writer.write(len(self.commit_slots), self._COUNT_BITS)
        for slot in self.commit_slots:
            writer.write(slot, self._SLOT_BITS)
        for entry in self.entries:
            writer.write(len(entry.writes), self._COUNT_BITS)
            for address, value in entry.writes:
                writer.write(address, self._ADDRESS_BITS)
                writer.write(value, self._VALUE_BITS)
        return writer.to_bytes(), writer.bit_length

    @classmethod
    def decode(cls, payload: bytes, bit_length: int) -> "DMALog":
        """Invert :meth:`encode`."""
        log = cls()
        reader = BitReader(payload, bit_length)
        slot_count = reader.read(cls._COUNT_BITS)
        for _ in range(slot_count):
            log.commit_slots.append(reader.read(cls._SLOT_BITS))
        while reader.bits_remaining >= cls._COUNT_BITS:
            count = reader.read(cls._COUNT_BITS)
            if count == 0 and reader.bits_remaining < (
                    cls._ADDRESS_BITS + cls._VALUE_BITS):
                break  # trailing padding
            writes = []
            for _ in range(count):
                address = reader.read(cls._ADDRESS_BITS)
                value = reader.read(cls._VALUE_BITS)
                writes.append((address, value))
            log.entries.append(DMAEntry(tuple(writes)))
        return log


@dataclass
class MemoryOrderingLog:
    """The PI log plus per-processor CS logs, with size accounting.

    This is the structure whose size the paper's Figures 6-9 report, in
    bits per processor per kilo-instruction: total log bits divided by
    total committed kilo-instructions across all processors (so an
    OrderOnly machine committing 2,000-instruction chunks with 4-bit PI
    entries pays 2 bits per processor per kilo-instruction before
    compression, matching Section 6.1).
    """

    pi_log: PILog
    cs_logs: dict[int, ChunkSizeLog]
    mode: ExecutionMode
    stratified_pi_bits: int | None = None
    stratified_pi_compressed_bits: int | None = None
    # Figure 9: cap -> (raw bits, compressed bits) for each
    # chunks-per-stratum configuration the recorder tracked.
    stratified_by_cap: dict[int, tuple[int, int]] = field(
        default_factory=dict)
    _cs_encoded: list[tuple[bytes, int]] = field(default_factory=list,
                                                 repr=False)

    def pi_size_bits(self, compressed: bool = False) -> int:
        """PI log size (zero in PicoLog)."""
        if not self.mode.has_pi_log:
            return 0
        if compressed:
            return self.pi_log.compressed_size_bits()
        return self.pi_log.size_bits

    def cs_size_bits(self, compressed: bool = False) -> int:
        """Total CS log size across processors."""
        if compressed:
            return sum(log.compressed_size_bits()
                       for log in self.cs_logs.values())
        return sum(log.size_bits for log in self.cs_logs.values())

    def total_size_bits(self, compressed: bool = False) -> int:
        """Memory-ordering log size = PI + CS."""
        return (self.pi_size_bits(compressed)
                + self.cs_size_bits(compressed))

    def bits_per_proc_per_kiloinst(
        self,
        total_committed_instructions: int,
        compressed: bool = False,
    ) -> float:
        """The paper's headline metric (Figures 6-8)."""
        if total_committed_instructions <= 0:
            return 0.0
        return (self.total_size_bits(compressed) * 1000.0
                / total_committed_instructions)
