"""Persisting recordings: a binary container for DeLorean's logs.

A :class:`~repro.core.recorder.Recording` in memory holds decoded log
objects plus verification instrumentation.  On disk, the hardware logs
are what matter, and they are stored in their native bit-packed wire
formats (Table 5) inside a small tagged container:

    magic  "DLRN" | version u8 | mode tag u8 | header JSON (configs)
    section* : tag u8 | proc id u16 | bit length u32 | payload bytes

The program and the verification fingerprints are stored as a pickled
trailer section -- they are simulation artifacts, not hardware state,
but without them a loaded recording could be replayed and *not*
verified, which would be a footgun.  ``save_recording``/
``load_recording`` round-trip everything; the test suite checks that a
loaded recording replays deterministically.
"""

from __future__ import annotations

import io
import json
import pickle
import struct

from repro.core.logs import (
    ChunkSizeLog,
    DMALog,
    InterruptLog,
    IOLog,
    PILog,
)
from repro.core.modes import ExecutionMode, ModeConfig
from repro.core.recorder import Recording
from repro.errors import LogFormatError
from repro.machine.timing import MachineConfig

_MAGIC = b"DLRN"
_VERSION = 1

_SECTION_PI = 1
_SECTION_CS = 2
_SECTION_INTERRUPT = 3
_SECTION_IO = 4
_SECTION_DMA = 5
_SECTION_TRAILER = 6
_SECTION_END = 255


def _write_section(buffer: io.BytesIO, tag: int, proc: int,
                   payload: bytes, bit_length: int) -> None:
    buffer.write(struct.pack(">BHI I", tag, proc, bit_length,
                             len(payload)))
    buffer.write(payload)


def _mode_header(recording: Recording) -> bytes:
    mode = recording.mode_config
    machine = recording.machine_config
    header = {
        "mode": mode.mode.value,
        "standard_chunk_size": mode.standard_chunk_size,
        "cs_distance_bits": mode.cs_distance_bits,
        "cs_size_bits": mode.cs_size_bits,
        "variable_truncation_rate": mode.variable_truncation_rate,
        "stratify": mode.stratify,
        "chunks_per_stratum": mode.chunks_per_stratum,
        "num_processors": machine.num_processors,
        "pi_entry_bits": machine.pi_entry_bits,
    }
    return json.dumps(header, sort_keys=True).encode()


def save_recording(recording: Recording) -> bytes:
    """Serialize a recording to a self-contained byte blob."""
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(struct.pack(">B", _VERSION))
    header = _mode_header(recording)
    buffer.write(struct.pack(">I", len(header)))
    buffer.write(header)

    payload, bits = recording.pi_log.encode()
    _write_section(buffer, _SECTION_PI, 0, payload, bits)
    for proc, log in sorted(recording.cs_logs.items()):
        payload, bits = log.encode()
        _write_section(buffer, _SECTION_CS, proc, payload, bits)
    for proc, log in sorted(recording.interrupt_logs.items()):
        payload, bits = log.encode()
        _write_section(buffer, _SECTION_INTERRUPT, proc, payload, bits)
    for proc, log in sorted(recording.io_logs.items()):
        payload, bits = log.encode()
        _write_section(buffer, _SECTION_IO, proc, payload, bits)
    payload, bits = recording.dma_log.encode()
    _write_section(buffer, _SECTION_DMA, 0, payload, bits)

    trailer = pickle.dumps({
        "program": recording.program,
        "machine_config": recording.machine_config,
        "mode_config": recording.mode_config,
        "strata": recording.strata,
        "stratified": recording.stratified,
        "fingerprints": recording.fingerprints,
        "per_proc_fingerprints": recording.per_proc_fingerprints,
        "final_memory": recording.final_memory,
        "final_thread_keys": recording.final_thread_keys,
        "stats": recording.stats,
        "memory_ordering": recording.memory_ordering,
        "interval_checkpoints": recording.interval_checkpoints,
    })
    _write_section(buffer, _SECTION_TRAILER, 0, trailer, 0)
    buffer.write(struct.pack(">BHI I", _SECTION_END, 0, 0, 0))
    return buffer.getvalue()


def load_recording(blob: bytes) -> Recording:
    """Invert :func:`save_recording`.

    The hardware logs are decoded from their wire formats (not from
    the pickled trailer), so a round trip genuinely exercises the
    Table 5 encodings.
    """
    buffer = io.BytesIO(blob)
    if buffer.read(4) != _MAGIC:
        raise LogFormatError("not a DeLorean recording (bad magic)")
    (version,) = struct.unpack(">B", buffer.read(1))
    if version != _VERSION:
        raise LogFormatError(f"unsupported recording version {version}")
    (header_length,) = struct.unpack(">I", buffer.read(4))
    header = json.loads(buffer.read(header_length))
    mode = ExecutionMode(header["mode"])
    mode_config = ModeConfig(
        mode=mode,
        standard_chunk_size=header["standard_chunk_size"],
        cs_distance_bits=header["cs_distance_bits"],
        cs_size_bits=header["cs_size_bits"],
        variable_truncation_rate=header["variable_truncation_rate"],
        stratify=header["stratify"],
        chunks_per_stratum=header["chunks_per_stratum"],
    )

    pi_log = PILog(header["pi_entry_bits"])
    cs_logs: dict[int, ChunkSizeLog] = {}
    interrupt_logs: dict[int, InterruptLog] = {}
    io_logs: dict[int, IOLog] = {}
    dma_log = DMALog()
    trailer: dict = {}
    while True:
        record = buffer.read(11)
        if len(record) < 11:
            raise LogFormatError("truncated recording (missing end tag)")
        tag, proc, bits, size = struct.unpack(">BHI I", record)
        if tag == _SECTION_END:
            break
        payload = buffer.read(size)
        if len(payload) != size:
            raise LogFormatError("truncated recording section")
        if tag == _SECTION_PI:
            pi_log = PILog.decode(payload, bits,
                                  header["pi_entry_bits"])
        elif tag == _SECTION_CS:
            cs_logs[proc] = ChunkSizeLog.decode(payload, bits,
                                                mode_config)
        elif tag == _SECTION_INTERRUPT:
            interrupt_logs[proc] = InterruptLog.decode(payload, bits)
        elif tag == _SECTION_IO:
            io_logs[proc] = IOLog.decode(payload, bits)
        elif tag == _SECTION_DMA:
            dma_log = DMALog.decode(payload, bits)
        elif tag == _SECTION_TRAILER:
            trailer = pickle.loads(payload)
        else:
            raise LogFormatError(f"unknown section tag {tag}")

    machine_config: MachineConfig = trailer["machine_config"]
    return Recording(
        mode_config=trailer["mode_config"],
        machine_config=machine_config,
        program=trailer["program"],
        pi_log=pi_log,
        cs_logs=cs_logs,
        interrupt_logs=interrupt_logs,
        io_logs=io_logs,
        dma_log=dma_log,
        strata=trailer["strata"],
        stratified=trailer["stratified"],
        fingerprints=trailer["fingerprints"],
        per_proc_fingerprints=trailer["per_proc_fingerprints"],
        final_memory=trailer["final_memory"],
        final_thread_keys=trailer["final_thread_keys"],
        stats=trailer["stats"],
        memory_ordering=trailer["memory_ordering"],
        interval_checkpoints=trailer.get("interval_checkpoints"),
    )
