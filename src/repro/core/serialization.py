"""Persisting recordings: a binary container for DeLorean's logs.

A :class:`~repro.core.recorder.Recording` in memory holds decoded log
objects plus verification instrumentation.  On disk, the hardware logs
are what matter, and they are stored in their native bit-packed wire
formats (Table 5) inside a small tagged container.  Two container
versions exist:

* **DLRN v1** (legacy, still readable)::

      magic "DLRN" | version u8=1 | header len u32 | header JSON
      section* : tag u8 | proc u16 | bit length u32 | byte length u32
                 | payload
      end      : tag 255 | zeros

* **DLRN v2** (the integrity-checked default)::

      magic "DLRN" | version u8=2 | header len u32 | header CRC32 u32
      | header JSON
      frame*   : sync "\\xA5SEC" | tag u8 | proc u16 | bit length u32
                 | byte length u32 | CRC32 u32 | payload
      end      : sync | tag 255 | zeros | CRC32 of the zero header

  Every v2 frame carries a CRC32 over its header fields and payload, so
  corruption is *detected at load time* as a typed
  :class:`~repro.errors.IntegrityError` instead of surfacing later as a
  baffling mid-replay divergence.  The sync marker makes frames
  self-delimiting: a salvage reader (:func:`load_recording_tolerant`)
  can skip a damaged frame, resync-scan to the next marker, and keep
  every section that still checks out.

The program and the verification fingerprints are stored as a pickled
trailer section -- they are simulation artifacts, not hardware state,
but without them a loaded recording could be replayed and *not*
verified, which would be a footgun.  ``save_recording``/
``load_recording`` round-trip everything; the test suite checks that a
loaded recording replays deterministically and that every single-byte
corruption of a v2 blob is detected or recovered, never silent.
"""

from __future__ import annotations

import io
import json
import pickle
import struct
import zlib
from dataclasses import dataclass

from repro.analysis.stats import RunStats
from repro.core.logs import (
    ChunkSizeLog,
    DMALog,
    InterruptLog,
    IOLog,
    PILog,
)
from repro.core.modes import ExecutionMode, ModeConfig
from repro.core.recorder import Recording
from repro.errors import (
    ChecksumError,
    IntegrityError,
    LogFormatError,
    ReproError,
    SalvageError,
)
from repro.machine.timing import MachineConfig

_MAGIC = b"DLRN"
_SYNC = b"\xa5SEC"
#: Container versions this module can read.
SUPPORTED_VERSIONS = (1, 2)
#: Container version :func:`save_recording` writes by default.
DEFAULT_VERSION = 2

_SECTION_PI = 1
_SECTION_CS = 2
_SECTION_INTERRUPT = 3
_SECTION_IO = 4
_SECTION_DMA = 5
_SECTION_TRAILER = 6
#: Journal flush marker (see :mod:`repro.guard.journal`): a tiny JSON
#: frame a write-ahead journal appends after each atomic flush of a
#: complete section set.  Both loaders skip it, so a journal file is a
#: valid (multi-epoch) container; the journal's own loader uses it to
#: find the last fully-flushed prefix.
_SECTION_FLUSH = 7
_SECTION_END = 255

_SECTION_NAMES = {
    _SECTION_PI: "pi",
    _SECTION_CS: "cs",
    _SECTION_INTERRUPT: "interrupt",
    _SECTION_IO: "io",
    _SECTION_DMA: "dma",
    _SECTION_TRAILER: "trailer",
    _SECTION_FLUSH: "flush",
    _SECTION_END: "end",
}

_FRAME_HEADER = struct.Struct(">BHII")      # tag, proc, bits, size
_FRAME_CRC = struct.Struct(">I")


def section_name(tag: int) -> str:
    """Human-readable name of a section tag."""
    return _SECTION_NAMES.get(tag, f"tag{tag}")


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


def _mode_header(recording: Recording) -> bytes:
    mode = recording.mode_config
    machine = recording.machine_config
    header = {
        "mode": mode.mode.value,
        "standard_chunk_size": mode.standard_chunk_size,
        "cs_distance_bits": mode.cs_distance_bits,
        "cs_size_bits": mode.cs_size_bits,
        "variable_truncation_rate": mode.variable_truncation_rate,
        "stratify": mode.stratify,
        "chunks_per_stratum": mode.chunks_per_stratum,
        "num_processors": machine.num_processors,
        "pi_entry_bits": machine.pi_entry_bits,
    }
    return json.dumps(header, sort_keys=True).encode()


def _iter_payloads(recording: Recording):
    """Yield ``(tag, proc, payload, bit_length)`` in container order."""
    payload, bits = recording.pi_log.encode()
    yield _SECTION_PI, 0, payload, bits
    for proc, log in sorted(recording.cs_logs.items()):
        payload, bits = log.encode()
        yield _SECTION_CS, proc, payload, bits
    for proc, log in sorted(recording.interrupt_logs.items()):
        payload, bits = log.encode()
        yield _SECTION_INTERRUPT, proc, payload, bits
    for proc, log in sorted(recording.io_logs.items()):
        payload, bits = log.encode()
        yield _SECTION_IO, proc, payload, bits
    payload, bits = recording.dma_log.encode()
    yield _SECTION_DMA, 0, payload, bits
    trailer = pickle.dumps({
        "program": recording.program,
        "machine_config": recording.machine_config,
        "mode_config": recording.mode_config,
        "strata": recording.strata,
        "stratified": recording.stratified,
        "fingerprints": recording.fingerprints,
        "per_proc_fingerprints": recording.per_proc_fingerprints,
        "final_memory": recording.final_memory,
        "final_thread_keys": recording.final_thread_keys,
        "stats": recording.stats,
        "memory_ordering": recording.memory_ordering,
        "interval_checkpoints": recording.interval_checkpoints,
    })
    yield _SECTION_TRAILER, 0, trailer, 0


def _save_v1(recording: Recording) -> bytes:
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(struct.pack(">B", 1))
    header = _mode_header(recording)
    buffer.write(struct.pack(">I", len(header)))
    buffer.write(header)
    for tag, proc, payload, bits in _iter_payloads(recording):
        buffer.write(_FRAME_HEADER.pack(tag, proc, bits, len(payload)))
        buffer.write(payload)
    buffer.write(_FRAME_HEADER.pack(_SECTION_END, 0, 0, 0))
    return buffer.getvalue()


def _frame_bytes(tag: int, proc: int, bits: int, payload: bytes) -> bytes:
    header = _FRAME_HEADER.pack(tag, proc, bits, len(payload))
    crc = zlib.crc32(header + payload) & 0xFFFFFFFF
    return _SYNC + header + _FRAME_CRC.pack(crc) + payload


def _save_v2(recording: Recording) -> bytes:
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(struct.pack(">B", 2))
    header = _mode_header(recording)
    buffer.write(struct.pack(">II",
                             len(header),
                             zlib.crc32(header) & 0xFFFFFFFF))
    buffer.write(header)
    for tag, proc, payload, bits in _iter_payloads(recording):
        buffer.write(_frame_bytes(tag, proc, bits, payload))
    buffer.write(_frame_bytes(_SECTION_END, 0, 0, b""))
    return buffer.getvalue()


def save_recording(recording: Recording,
                   version: int = DEFAULT_VERSION) -> bytes:
    """Serialize a recording to a self-contained byte blob.

    ``version`` selects the container format (default: the
    integrity-checked DLRN v2); v1 remains writable so compatibility
    tests can exercise the legacy reader against fresh recordings.
    """
    if version == 1:
        return _save_v1(recording)
    if version == 2:
        return _save_v2(recording)
    raise LogFormatError(f"cannot write recording version {version} "
                         f"(supported: {SUPPORTED_VERSIONS})")


# ----------------------------------------------------------------------
# Frame scanning (v2)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SectionFrame:
    """One framed v2 section as found on the wire."""

    start: int          # offset of the sync marker
    end: int            # offset one past the payload
    tag: int
    proc: int
    bit_length: int
    payload: bytes
    crc_ok: bool

    @property
    def name(self) -> str:
        """Human-readable section name."""
        return section_name(self.tag)


@dataclass(frozen=True)
class SectionDamage:
    """One integrity problem found while reading a recording."""

    offset: int
    reason: str
    tag: int | None = None
    proc: int | None = None

    def describe(self) -> str:
        """One-line human-readable description."""
        where = (f"{section_name(self.tag)} section"
                 if self.tag is not None else "container")
        if self.proc is not None and self.tag in (
                _SECTION_CS, _SECTION_INTERRUPT, _SECTION_IO):
            where += f" (proc {self.proc})"
        return f"{where} at offset {self.offset}: {self.reason}"


def _parse_frame_at(blob: bytes, pos: int) -> SectionFrame | None:
    """Parse the frame whose sync marker starts at ``pos``.

    Returns None when no structurally plausible frame starts there
    (wrong sync, header runs off the blob, or the declared payload does
    not end at another sync marker / end of blob).
    """
    if blob[pos:pos + 4] != _SYNC:
        return None
    header_end = pos + 4 + _FRAME_HEADER.size
    crc_end = header_end + _FRAME_CRC.size
    if crc_end > len(blob):
        return None
    tag, proc, bits, size = _FRAME_HEADER.unpack(
        blob[pos + 4:header_end])
    end = crc_end + size
    if end > len(blob):
        return None
    (stored_crc,) = _FRAME_CRC.unpack(blob[header_end:crc_end])
    payload = blob[crc_end:end]
    actual = zlib.crc32(blob[pos + 4:header_end] + payload) & 0xFFFFFFFF
    crc_ok = actual == stored_crc
    if not crc_ok and end != len(blob) and blob[end:end + 4] != _SYNC:
        # Neither the checksum nor the framing is trustworthy: the
        # size field itself is probably damaged.  Reject, so the
        # caller resync-scans instead of leaping a bogus distance.
        return None
    return SectionFrame(start=pos, end=end, tag=tag, proc=proc,
                        bit_length=bits, payload=payload, crc_ok=crc_ok)


def scan_frames(blob: bytes,
                data_start: int) -> tuple[list[SectionFrame],
                                          list[SectionDamage]]:
    """Walk the v2 frame stream from ``data_start``, resyncing past
    damage.

    Returns every structurally recovered frame (``crc_ok`` says whether
    its contents are trustworthy) plus a damage report for each region
    that had to be skipped.  Used by both the strict and the tolerant
    loaders -- strictness is a policy decision of the caller.
    """
    frames: list[SectionFrame] = []
    damage: list[SectionDamage] = []
    pos = data_start
    saw_end = False
    while pos < len(blob):
        frame = _parse_frame_at(blob, pos)
        if frame is None:
            # Resync: scan forward for the next validating frame.
            scan = blob.find(_SYNC, pos + 1)
            while scan != -1 and _parse_frame_at(blob, scan) is None:
                scan = blob.find(_SYNC, scan + 1)
            damage.append(SectionDamage(
                offset=pos,
                reason="unparseable bytes (resync scan)" if scan != -1
                else "unparseable bytes to end of blob"))
            if scan == -1:
                break
            pos = scan
            continue
        if not frame.crc_ok:
            damage.append(SectionDamage(
                offset=frame.start, reason="CRC32 mismatch",
                tag=frame.tag, proc=frame.proc))
        if frame.tag == _SECTION_END:
            if frame.crc_ok:
                saw_end = True
                break
        else:
            frames.append(frame)
        pos = frame.end
    if not saw_end:
        damage.append(SectionDamage(
            offset=len(blob), reason="missing end-of-container frame"))
    return frames, damage


def container_frames(blob: bytes) -> tuple[list[SectionFrame],
                                           list[SectionDamage]]:
    """Scan a v2 blob's section frames without assembling a Recording.

    The fault injector uses this to locate whole sections for drop and
    duplication faults.  v1 blobs have no self-delimiting frames, so
    they raise :class:`~repro.errors.LogFormatError`.
    """
    version, _header, data_start, _ = _read_preamble(blob)
    if version != 2:
        raise LogFormatError(
            "section framing requires a v2 container")
    return scan_frames(blob, data_start)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


def _read_preamble(blob: bytes) -> tuple[int, dict, int,
                                         list[SectionDamage]]:
    """Magic/version/header; returns (version, header dict, offset of
    the first section, header damage)."""
    if len(blob) < 5 or blob[:4] != _MAGIC:
        raise LogFormatError("not a DeLorean recording (bad magic)")
    version = blob[4]
    if version not in SUPPORTED_VERSIONS:
        raise LogFormatError(f"unsupported recording version {version}")
    if version == 1:
        if len(blob) < 9:
            raise LogFormatError("truncated recording (no header)")
        (header_len,) = struct.unpack_from(">I", blob, 5)
        data_start = 9 + header_len
        header_bytes = blob[9:data_start]
    else:
        if len(blob) < 13:
            raise LogFormatError("truncated recording (no header)")
        header_len, header_crc = struct.unpack_from(">II", blob, 5)
        data_start = 13 + header_len
        header_bytes = blob[13:data_start]
        if zlib.crc32(header_bytes) & 0xFFFFFFFF != header_crc:
            raise ChecksumError(
                "recording header failed its CRC32 check")
    if len(header_bytes) != header_len:
        raise LogFormatError("truncated recording (header cut short)")
    try:
        header = json.loads(header_bytes)
    except ValueError as error:
        raise LogFormatError(
            f"recording header is not valid JSON: {error}") from error
    for key in ("mode", "standard_chunk_size", "num_processors",
                "pi_entry_bits"):
        if key not in header:
            raise LogFormatError(
                f"recording header is missing {key!r}")
    return version, header, data_start, []


def _mode_config_from_header(header: dict) -> ModeConfig:
    mode = ExecutionMode(header["mode"])
    return ModeConfig(
        mode=mode,
        standard_chunk_size=header["standard_chunk_size"],
        cs_distance_bits=header["cs_distance_bits"],
        cs_size_bits=header["cs_size_bits"],
        variable_truncation_rate=header["variable_truncation_rate"],
        stratify=header["stratify"],
        chunks_per_stratum=header["chunks_per_stratum"],
    )


def _frames_v1(blob: bytes, data_start: int) -> list[SectionFrame]:
    """Sequential (unframed, un-checksummed) v1 section walk."""
    frames: list[SectionFrame] = []
    pos = data_start
    while True:
        header_end = pos + _FRAME_HEADER.size
        if header_end > len(blob):
            raise LogFormatError("truncated recording (missing end tag)")
        tag, proc, bits, size = _FRAME_HEADER.unpack(
            blob[pos:header_end])
        if tag == _SECTION_END:
            break
        end = header_end + size
        if end > len(blob):
            raise LogFormatError("truncated recording section")
        frames.append(SectionFrame(
            start=pos, end=end, tag=tag, proc=proc, bit_length=bits,
            payload=blob[header_end:end], crc_ok=True))
        pos = end
    return frames


def _unpickle_trailer(payload: bytes) -> dict:
    """Sanity-check and decode the pickled trailer section."""
    # Pickle protocol >= 2 streams start with the PROTO opcode; the
    # cheap check keeps obviously-garbage bytes away from the
    # unpickler entirely.
    if not payload or payload[:1] != b"\x80":
        raise LogFormatError(
            "trailer section does not look like a pickle stream")
    try:
        trailer = pickle.loads(payload)
    except Exception as error:
        raise LogFormatError(
            f"trailer section failed to unpickle: "
            f"{type(error).__name__}: {error}") from error
    if not isinstance(trailer, dict):
        raise LogFormatError("trailer section is not a mapping")
    for key in ("program", "machine_config", "mode_config"):
        if key not in trailer:
            raise LogFormatError(
                f"trailer section is missing {key!r}")
    return trailer


def _assemble(header: dict, frames: list[SectionFrame],
              damage: list[SectionDamage],
              tolerant: bool) -> Recording:
    """Build a Recording from decoded frames.

    In tolerant mode a frame that fails to decode (or is missing
    entirely) is replaced by an empty log and reported in ``damage``;
    in strict mode decode failures raise.
    """
    mode_config = _mode_config_from_header(header)
    num_processors = header["num_processors"]
    pi_log = PILog(header["pi_entry_bits"])
    cs_logs: dict[int, ChunkSizeLog] = {}
    interrupt_logs: dict[int, InterruptLog] = {}
    io_logs: dict[int, IOLog] = {}
    dma_log = DMALog()
    trailer: dict | None = None
    seen: set[tuple[int, int]] = set()

    for frame in frames:
        if not frame.crc_ok:
            continue  # already reported by the scanner
        if frame.tag == _SECTION_FLUSH:
            continue  # journal metadata, not recording content
        if (frame.tag, frame.proc) in seen:
            if not tolerant:
                raise LogFormatError(
                    f"duplicate {section_name(frame.tag)} section "
                    f"for proc {frame.proc}")
            damage.append(SectionDamage(
                offset=frame.start, reason="duplicate section ignored",
                tag=frame.tag, proc=frame.proc))
            continue
        try:
            if frame.tag == _SECTION_PI:
                pi_log = PILog.decode(frame.payload, frame.bit_length,
                                      header["pi_entry_bits"])
            elif frame.tag == _SECTION_CS:
                cs_logs[frame.proc] = ChunkSizeLog.decode(
                    frame.payload, frame.bit_length, mode_config)
            elif frame.tag == _SECTION_INTERRUPT:
                interrupt_logs[frame.proc] = InterruptLog.decode(
                    frame.payload, frame.bit_length)
            elif frame.tag == _SECTION_IO:
                io_logs[frame.proc] = IOLog.decode(frame.payload,
                                                   frame.bit_length)
            elif frame.tag == _SECTION_DMA:
                dma_log = DMALog.decode(frame.payload,
                                        frame.bit_length)
            elif frame.tag == _SECTION_TRAILER:
                trailer = _unpickle_trailer(frame.payload)
            else:
                raise LogFormatError(
                    f"unknown section tag {frame.tag}")
        except ReproError:
            if not tolerant:
                raise
            damage.append(SectionDamage(
                offset=frame.start, reason="section failed to decode",
                tag=frame.tag, proc=frame.proc))
            continue
        seen.add((frame.tag, frame.proc))

    if trailer is None:
        raise SalvageError(
            "the trailer section (program + verification state) is "
            "damaged or missing; nothing can be replayed")
    # The writer emits every section unconditionally, so absence is
    # itself evidence of damage.
    expected = [(_SECTION_PI, 0), (_SECTION_DMA, 0)]
    for proc in range(num_processors):
        expected += [(_SECTION_CS, proc),
                     (_SECTION_INTERRUPT, proc),
                     (_SECTION_IO, proc)]
    missing = [pair for pair in expected if pair not in seen]
    if missing and not tolerant:
        tag, proc = missing[0]
        raise LogFormatError(
            f"recording is missing its {section_name(tag)} section "
            f"for proc {proc}")
    if tolerant:
        for tag, proc in missing:
            damage.append(SectionDamage(
                offset=-1, reason="section missing (damaged or "
                "dropped); replaced with an empty log",
                tag=tag, proc=proc))
        for proc in range(num_processors):
            cs_logs.setdefault(proc, ChunkSizeLog(mode_config))
            interrupt_logs.setdefault(proc, InterruptLog())
            io_logs.setdefault(proc, IOLog())

    machine_config: MachineConfig = trailer["machine_config"]
    stats = trailer.get("stats")
    if stats is None:
        stats = RunStats()
    return Recording(
        mode_config=trailer["mode_config"],
        machine_config=machine_config,
        program=trailer["program"],
        pi_log=pi_log,
        cs_logs=cs_logs,
        interrupt_logs=interrupt_logs,
        io_logs=io_logs,
        dma_log=dma_log,
        strata=trailer.get("strata", []),
        stratified=trailer.get("stratified", False),
        fingerprints=trailer.get("fingerprints", []),
        per_proc_fingerprints=trailer.get("per_proc_fingerprints", {}),
        final_memory=trailer.get("final_memory", {}),
        final_thread_keys=trailer.get("final_thread_keys", {}),
        stats=stats,
        memory_ordering=trailer.get("memory_ordering"),
        interval_checkpoints=trailer.get("interval_checkpoints"),
    )


def _load(blob: bytes, tolerant: bool) -> tuple[Recording,
                                                list[SectionDamage]]:
    version, header, data_start, damage = _read_preamble(blob)
    if version == 1:
        frames = _frames_v1(blob, data_start)
    else:
        frames, frame_damage = scan_frames(blob, data_start)
        damage = damage + frame_damage
        if damage and not tolerant:
            first = damage[0]
            if first.reason == "CRC32 mismatch":
                raise ChecksumError(
                    f"recording integrity check failed: "
                    f"{first.describe()}",
                    section_tag=first.tag, proc=first.proc)
            raise LogFormatError(
                f"recording framing damaged: {first.describe()}")
    recording = _assemble(header, frames, damage, tolerant)
    return recording, damage


def load_recording(blob: bytes) -> Recording:
    """Invert :func:`save_recording` (either container version).

    The hardware logs are decoded from their wire formats (not from
    the pickled trailer), so a round trip genuinely exercises the
    Table 5 encodings.  A damaged blob raises a typed
    :class:`~repro.errors.IntegrityError` subclass
    (:class:`~repro.errors.LogFormatError` for structural damage,
    :class:`~repro.errors.ChecksumError` for CRC failures) -- never a
    raw ``struct.error`` / ``pickle.UnpicklingError`` / ``EOFError``.
    """
    try:
        recording, _ = _load(blob, tolerant=False)
        return recording
    except ReproError:
        raise
    except Exception as error:
        # Anything else leaking out of the decoder is a malformed blob
        # wearing an implementation-detail disguise.
        raise LogFormatError(
            f"malformed recording: {type(error).__name__}: "
            f"{error}") from error


def load_recording_tolerant(blob: bytes) -> tuple[Recording,
                                                  list[SectionDamage]]:
    """Best-effort load of a (possibly damaged) recording.

    Where :func:`load_recording` fails fast, this reader keeps going:
    damaged v2 frames are skipped via resync scanning, undecodable
    sections are replaced by empty logs, and every problem is reported
    as a :class:`SectionDamage`.  An intact blob returns
    ``(recording, [])``.  Only a damaged header or trailer -- the
    parts nothing can be rebuilt without -- still raise
    (:class:`~repro.errors.SalvageError` /
    :class:`~repro.errors.IntegrityError`).

    The result is the input to salvage replay
    (:func:`repro.faults.salvage_replay`), which replays as far as the
    surviving logs allow and reports coverage.
    """
    try:
        return _load(blob, tolerant=True)
    except ReproError:
        raise
    except Exception as error:
        raise LogFormatError(
            f"malformed recording: {type(error).__name__}: "
            f"{error}") from error
