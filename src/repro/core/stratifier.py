"""PI-log stratification (Section 4.3).

Rather than dumping one procID per committed chunk, the Stratifier
groups consecutive conflict-free chunk commits into *chunk strata*: each
stratum is a vector of per-processor counters saying how many chunks
each processor committed since the previous stratum.  Chunks inside a
stratum have no cross-processor conflicts, so replay may commit them in
any order (same-processor chunks serialize by construction) -- which is
why the exact sequence need not be stored.

A new stratum is created when the chunk to log next (i) conflicts with
chunks committed by *other* processors since the last stratum, or
(ii) would overflow its processor's counter.  The hardware design keeps
one Signature Register (SR) per processor holding the OR of that
processor's chunk signatures since the last stratum; we keep separate
read- and write-side SRs so the conflict test is the usual
``W ∩ (R ∪ W)`` dependence test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chunks.signature import Signature, SignatureConfig
from repro.compression.bitstream import BitReader, BitWriter
from repro.compression.lz77 import compressed_size_bits
from repro.errors import ConfigurationError, LogFormatError


@dataclass(frozen=True)
class Stratum:
    """One stratified PI-log entry: chunks committed per processor."""

    counts: tuple[int, ...]

    @property
    def total_chunks(self) -> int:
        """Chunks summarized by this stratum."""
        return sum(self.counts)


class Stratifier:
    """The Stratifier Module of Figure 5(b).

    Observes the committed chunk stream ``(procID, R-sig, W-sig)`` and
    produces the stratified PI log.  ``chunks_per_stratum`` is the
    counter saturation value (1, 3 or 7 in Figure 9).
    """

    def __init__(
        self,
        num_slots: int,
        chunks_per_stratum: int,
        signature_config: SignatureConfig | None = None,
    ) -> None:
        if num_slots < 1:
            raise ConfigurationError("need at least one processor slot")
        if chunks_per_stratum < 1:
            raise ConfigurationError("chunks_per_stratum must be >= 1")
        self.num_slots = num_slots
        self.chunks_per_stratum = chunks_per_stratum
        self._signature_config = signature_config or SignatureConfig()
        self._counts = [0] * num_slots
        self._read_srs = [Signature(self._signature_config)
                          for _ in range(num_slots)]
        self._write_srs = [Signature(self._signature_config)
                           for _ in range(num_slots)]
        self.strata: list[Stratum] = []

    @property
    def counter_bits(self) -> int:
        """Bits per counter in a stratum vector (saturation + 1 values).

        1 chunk/stratum needs 1 bit, 3 need 2 bits, 7 need 3 bits --
        the configurations of Figure 9.
        """
        return self.chunks_per_stratum.bit_length()

    @property
    def stratum_bits(self) -> int:
        """Bits per stratum: one counter per processor slot."""
        return self.num_slots * self.counter_bits

    def _conflicts_with_others(
        self,
        proc: int,
        read_sig: Signature,
        write_sig: Signature,
    ) -> bool:
        """Dependence test against every other processor's SRs."""
        for other in range(self.num_slots):
            if other == proc:
                continue
            if write_sig.intersects(self._read_srs[other]):
                return True
            if write_sig.intersects(self._write_srs[other]):
                return True
            if read_sig.intersects(self._write_srs[other]):
                return True
        return False

    def _emit_stratum(self) -> None:
        self.strata.append(Stratum(tuple(self._counts)))
        for slot in range(self.num_slots):
            self._counts[slot] = 0
            self._read_srs[slot].clear()
            self._write_srs[slot].clear()

    def observe(
        self,
        proc: int,
        read_sig: Signature,
        write_sig: Signature,
    ) -> None:
        """Process one committed chunk in commit order."""
        if not 0 <= proc < self.num_slots:
            raise ConfigurationError(
                f"procID {proc} outside [0, {self.num_slots})")
        saturated = self._counts[proc] >= self.chunks_per_stratum
        conflicting = self._conflicts_with_others(proc, read_sig, write_sig)
        if saturated or conflicting:
            self._emit_stratum()
        self._read_srs[proc].union_update(read_sig)
        self._write_srs[proc].union_update(write_sig)
        self._counts[proc] += 1

    def finish(self) -> None:
        """Flush the partially-built final stratum."""
        if any(self._counts):
            self._emit_stratum()

    @property
    def total_chunks(self) -> int:
        """Chunks observed so far (flushed strata plus pending)."""
        return (sum(s.total_chunks for s in self.strata)
                + sum(self._counts))

    # -- serialization -------------------------------------------------

    def encode(self) -> tuple[bytes, int]:
        """Pack the stratified PI log: one counter vector per stratum."""
        writer = BitWriter()
        bits = self.counter_bits
        for stratum in self.strata:
            for count in stratum.counts:
                writer.write(count, bits)
        return writer.to_bytes(), writer.bit_length

    def decode_strata(self, payload: bytes, bit_length: int) -> \
            list[Stratum]:
        """Invert :meth:`encode` (needs this stratifier's geometry)."""
        reader = BitReader(payload, bit_length)
        strata = []
        while reader.bits_remaining >= self.stratum_bits:
            counts = tuple(reader.read(self.counter_bits)
                           for _ in range(self.num_slots))
            strata.append(Stratum(counts))
        return strata

    @property
    def size_bits(self) -> int:
        """Uncompressed stratified PI log size in bits."""
        return len(self.strata) * self.stratum_bits

    def compressed_size_bits(self) -> int:
        """Stratified PI log size after LZ77 compression."""
        payload, bits = self.encode()
        return compressed_size_bits(payload, raw_bits=bits)

    def validate_against_commits(self, commit_procs: list[int]) -> None:
        """Check the strata exactly cover a commit sequence (test aid).

        Raises :class:`LogFormatError` when counts do not reconstruct
        the per-processor commit totals, stratum by stratum.
        """
        cursor = 0
        for index, stratum in enumerate(self.strata):
            window = commit_procs[cursor:cursor + stratum.total_chunks]
            for proc in range(self.num_slots):
                observed = sum(1 for p in window if p == proc)
                if observed != stratum.counts[proc]:
                    raise LogFormatError(
                        f"stratum {index} claims {stratum.counts[proc]} "
                        f"chunks for processor {proc}, commit sequence "
                        f"has {observed}")
            cursor += stratum.total_chunks
        if cursor != len(commit_procs):
            raise LogFormatError(
                f"strata cover {cursor} commits, sequence has "
                f"{len(commit_procs)}")
