"""Interval replay: checkpoints at commit boundaries (Appendix B).

The paper's determinism theorem is stated for *intervals*: "assuming
that a system checkpoint was taken at GCC=n, DeLorean can
deterministically replay an execution for the interval I(n,m)".  In
deployment that is the whole point of pairing the logs with
ReVive/SafetyNet-style checkpointing (Section 3.3): a day-long
recording is replayed from the checkpoint nearest the crash, not from
boot.

An :class:`IntervalCheckpoint` captures the committed architectural
state at a global commit count (GCC): the memory image, each
processor's committed thread state and commit count, and the log
cursors needed to resume consuming every log mid-stream.  Because all
of DeLorean's logs are indexed by architectural counters -- PI entries
by commit position, CS entries by per-processor chunk sequence numbers,
interrupt entries by chunkID, I/O values by per-processor consumption
order, DMA bursts by commit slot -- slicing them at a checkpoint is
exact, with no log rewriting.

Checkpoints are taken *logically* at the finalization of the n-th
commit; speculative chunks in flight at that wall-clock instant are,
by construction, not part of the committed state and simply re-execute
during the interval replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machine.program import ThreadState


@dataclass(frozen=True)
class IntervalCheckpoint:
    """Committed architectural state at GCC = ``commit_index``.

    ``commit_index`` counts *logical commits in grant order*, i.e. the
    position in the recording's fingerprint/commit sequence, including
    DMA bursts (which occupy PI-log entries in Order&Size/OrderOnly).
    ``io_consumed`` / ``dma_consumed`` are per-log consumption cursors
    at that point.
    """

    commit_index: int
    memory_image: dict[int, int]
    thread_states: dict[int, ThreadState]
    committed_counts: dict[int, int]
    io_consumed: dict[int, int]
    dma_consumed: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.commit_index < 0:
            raise ConfigurationError("commit_index must be >= 0")

    @property
    def processor_grants(self) -> int:
        """Processor-chunk grants among the first ``commit_index``
        commits (the PicoLog commit-slot counter's value at the
        checkpoint)."""
        return sum(self.committed_counts.values())


@dataclass
class IntervalCheckpointStore:
    """The checkpoints taken during one recording, in GCC order."""

    interval: int = 0
    checkpoints: list[IntervalCheckpoint] = field(default_factory=list)

    def add(self, checkpoint: IntervalCheckpoint) -> None:
        """Append the next checkpoint (GCC order enforced)."""
        if (self.checkpoints
                and checkpoint.commit_index
                <= self.checkpoints[-1].commit_index):
            raise ConfigurationError(
                "interval checkpoints must advance in commit order")
        self.checkpoints.append(checkpoint)

    def __len__(self) -> int:
        return len(self.checkpoints)

    def __iter__(self):
        return iter(self.checkpoints)

    def at_or_before(self, commit_index: int) -> IntervalCheckpoint:
        """The newest checkpoint with GCC <= ``commit_index`` (what a
        debugger replaying towards a crash point would pick)."""
        eligible = [c for c in self.checkpoints
                    if c.commit_index <= commit_index]
        if not eligible:
            raise ConfigurationError(
                f"no checkpoint at or before commit {commit_index}")
        return eligible[-1]

    def by_index(self, position: int) -> IntervalCheckpoint:
        """The ``position``-th checkpoint taken."""
        if not 0 <= position < len(self.checkpoints):
            raise ConfigurationError(
                f"checkpoint index {position} out of range "
                f"(have {len(self.checkpoints)})")
        return self.checkpoints[position]

    def full_size_bits(self, address_bits: int = 32,
                       value_bits: int = 32) -> int:
        """Storage cost of the grid with every checkpoint standalone.

        Each checkpoint is billed its complete memory image (one
        address/value pair per line) plus the per-processor counters;
        this is what the serialized container stores today.
        """
        pair = _line_pair_bits(address_bits, value_bits)
        total = 0
        for checkpoint in self.checkpoints:
            total += len(checkpoint.memory_image) * pair
            total += _cursor_bits(checkpoint, value_bits)
        return total

    def delta_size_bits(self, address_bits: int = 32,
                        value_bits: int = 32) -> int:
        """Storage cost with each checkpoint stored as a delta.

        Consecutive commit-boundary images overlap almost entirely (a
        checkpoint interval only dirties the lines its commits wrote),
        so an incremental scheme -- the first checkpoint full, each
        later one only the added/changed lines against its predecessor
        -- is how a ReVive/SafetyNet-style substrate would actually
        ship the grid.  Restoring checkpoint k replays deltas 1..k
        onto the base image; replay latency is unaffected (restoration
        is off the critical path).
        """
        pair = _line_pair_bits(address_bits, value_bits)
        total = 0
        previous: dict[int, int] = {}
        for checkpoint in self.checkpoints:
            image = checkpoint.memory_image
            changed = sum(
                1 for address, value in image.items()
                if previous.get(address) != value)
            # Lines vanishing from the image cannot happen (committed
            # memory only accretes), but bill deletions defensively.
            deleted = sum(1 for address in previous
                          if address not in image)
            total += (changed + deleted) * pair
            total += _cursor_bits(checkpoint, value_bits)
            previous = image
        return total


def _line_pair_bits(address_bits: int, value_bits: int) -> int:
    """Validated cost of one stored (address, value) line."""
    if address_bits < 1 or value_bits < 1:
        raise ConfigurationError(
            f"line widths must be positive, got address_bits="
            f"{address_bits}, value_bits={value_bits}")
    return address_bits + value_bits


def _cursor_bits(checkpoint: IntervalCheckpoint,
                 value_bits: int) -> int:
    """Non-image payload of one checkpoint: commit counters, log
    cursors, and per-thread architectural state (flat estimate)."""
    counters = (1 + len(checkpoint.committed_counts)
                + len(checkpoint.io_consumed) + 1)
    threads = len(checkpoint.thread_states) * 4
    return (counters + threads) * value_bits
