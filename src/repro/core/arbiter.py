"""The commit arbiter and its ordering policies.

The arbiter observes chunk-commit requests (each carrying the chunk's
signatures), decides who may commit next, and enforces the concurrency
rules of BulkSC: up to ``max_concurrent_commits`` chunks commit in
parallel as long as their signatures do not overlap (Figure 4).

What differs between DeLorean's modes -- and between recording and
replay -- is only the *ordering policy*:

* :class:`ArrivalOrderPolicy` -- record-mode Order&Size/OrderOnly: grant
  in request-arrival order, skipping over requests that conflict with
  in-flight commits.
* :class:`RoundRobinPolicy` -- PicoLog (record *and* replay): a commit
  token circulates; processor ``i+1`` cannot be granted before ``i``
  (Section 6.3).  The policy also gathers the token statistics of
  Table 6.
* :class:`PIReplayPolicy` -- replay-mode Order&Size/OrderOnly: grant
  exactly in PI-log order.
* :class:`StrataReplayPolicy` -- replay from a *stratified* PI log:
  within a stratum, chunks from different processors may commit in any
  order (Section 4.3), so the policy only enforces per-stratum counts.

The arbiter also honours *continuation reservations*: when a replayed
chunk commits short because of an unexpected cache overflow, its second
piece must commit immediately after, with no foreign commit in between
(Section 4.2.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.chunks.chunk import Chunk, ChunkState
from repro.errors import ReplayDivergenceError
from repro.telemetry.tracer import NULL_TRACER


@dataclass
class TokenStats:
    """Raw samples for the Table 6 token-passing characterization."""

    ready_count: int = 0
    not_ready_count: int = 0
    wait_token_cycles: list[float] = field(default_factory=list)
    wait_complete_cycles: list[float] = field(default_factory=list)
    roundtrip_cycles: list[float] = field(default_factory=list)
    ready_procs_samples: list[int] = field(default_factory=list)
    parallel_commit_samples: list[int] = field(default_factory=list)

    @property
    def proc_ready_fraction(self) -> float:
        """Fraction of token acquisitions that found the processor
        ready to commit (Table 6 'Proc Ready')."""
        total = self.ready_count + self.not_ready_count
        return self.ready_count / total if total else 0.0

    @staticmethod
    def _mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def summary(self) -> dict[str, float]:
        """Aggregate means in the shape of Table 6's columns."""
        return {
            "ready_procs_avg": self._mean(
                [float(v) for v in self.ready_procs_samples]),
            "actual_commit_avg": self._mean(
                [float(v) for v in self.parallel_commit_samples]),
            "proc_ready_pct": 100.0 * self.proc_ready_fraction,
            "wait_token_cycles": self._mean(self.wait_token_cycles),
            "wait_complete_cycles": self._mean(self.wait_complete_cycles),
            "token_roundtrip_cycles": self._mean(self.roundtrip_cycles),
        }


def arrival_key(chunk: Chunk) -> tuple:
    """Explicit, platform-independent arrival ordering key.

    The pending list is appended in event-dispatch order, which is
    deterministic *within* one interpreter but an implementation detail
    of the event engine.  Ordering by ``(request_time, processor,
    logical_seq, piece_index)`` instead makes the realized grant order a
    pure function of the simulated execution, so explored schedules are
    content-addressable and cache hits are sound across platforms
    (requests that tie on arrival cycle resolve by processor ID, never
    by queue-insertion accident).
    """
    return (chunk.request_time, chunk.processor, chunk.logical_seq,
            chunk.piece_index)


class ArrivalOrderPolicy:
    """Record-mode policy for Order&Size/OrderOnly: strict arrival
    order.

    The oldest pending request is granted as soon as its signatures do
    not overlap any in-flight commit; while it conflicts, *nothing*
    overtakes it.  Allowing younger non-conflicting requests to slip
    past looks harmless but livelocks: two processors spinning on a
    held lock produce an endless supply of write-free (always
    grantable) chunks whose read sets conflict with the holder's
    pending unlock, starving it forever.  Head-of-line blocking bounds
    every wait by the in-flight commits' latency.

    "Oldest" is defined by :func:`arrival_key`, which breaks
    same-cycle arrival ties by processor ID so the grant order is
    explicitly deterministic.
    """

    def select(self, pending: list[Chunk], committing: list[Chunk],
               now: float) -> Chunk | None:
        """The oldest pending request, if it does not overlap any
        in-flight commit."""
        if not pending:
            return None
        head = min(pending, key=arrival_key)
        if any(self._overlaps(head, other) for other in committing):
            return None
        return head

    @staticmethod
    def _overlaps(chunk: Chunk, committing: Chunk) -> bool:
        return (chunk.write_signature.intersects(committing.write_signature)
                or chunk.write_signature.intersects(
                    committing.read_signature)
                or chunk.read_signature.intersects(
                    committing.write_signature))

    def on_grant(self, chunk: Chunk, now: float) -> None:
        """Arrival order keeps no state."""

    def finish(self) -> None:
        """Nothing to flush."""


@dataclass(frozen=True)
class SchedulePlan:
    """A deterministic prescription of the record-phase commit order.

    The schedule-space explorer (:mod:`repro.explore`) perturbs the
    arbiter's grant order through one of these.  A plan is pure data --
    JSON-friendly, hashable, content-addressable -- and the schedule it
    induces is a deterministic function of (plan, program, machine
    config), so every explored schedule can be re-recorded and cached.

    ``prefix``
        Processor IDs granted first, in exactly this order (the DPOR
        branch prescriptions).  An entry whose processor can never
        commit again is skipped, so prefixes lifted from one execution
        stay usable after the reordering changes the tail.
    ``seed``
        After the prefix, grant by PCT-style randomized priorities
        derived from this seed (``None`` falls back to arrival order).
    ``change_points``
        Policy-grant indices at which the currently highest-priority
        active processor is demoted below every other (PCT's d priority
        change points, positions chosen by the explorer from the same
        campaign seed).
    """

    seed: int | None = None
    prefix: tuple[int, ...] = ()
    change_points: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "prefix", tuple(self.prefix))
        object.__setattr__(self, "change_points",
                           tuple(sorted(self.change_points)))

    @property
    def is_natural(self) -> bool:
        """True when the plan prescribes nothing (the default order)."""
        return (self.seed is None and not self.prefix
                and not self.change_points)

    def priorities(self, num_processors: int) -> dict[int, int]:
        """Seed-derived priority per processor (higher commits first).

        Deterministic: the same seed always yields the same
        permutation, on every platform.
        """
        order = list(range(num_processors))
        if self.seed is not None:
            random.Random(self.seed).shuffle(order)
        return {proc: num_processors - rank
                for rank, proc in enumerate(order)}

    def as_dict(self) -> dict:
        """JSON form (the explore report / RunSpec encoding)."""
        return {"seed": self.seed, "prefix": list(self.prefix),
                "change_points": list(self.change_points)}

    @classmethod
    def from_dict(cls, data: dict) -> "SchedulePlan":
        """Inverse of :meth:`as_dict`."""
        return cls(seed=data.get("seed"),
                   prefix=tuple(data.get("prefix", ())),
                   change_points=tuple(data.get("change_points", ())))


class SchedulePolicy:
    """Record-mode exploration policy: grant in a prescribed or
    seeded-priority order (:class:`SchedulePlan`).

    While the plan's prefix lasts, the arbiter *waits* for the named
    processor's next chunk even when other processors are ready -- that
    waiting is the whole point: it opens commit-order windows that
    arrival order would never produce (a delayed grant lets another
    processor's racing chunk slip in between).  After the prefix, grants
    follow the seeded priorities, demoting the top active processor at
    each change point; with no seed the policy degenerates to arrival
    order.

    A prescribed target that can never commit again (thread finished,
    nothing pending) is skipped, so infeasible prefix tails -- normal
    after a DPOR reordering perturbs the execution -- degrade gracefully
    instead of deadlocking.  A pathological plan can still starve the
    machine (e.g. priorities that favour a spinner over the lock
    holder); that is an *outcome*, classified by the guard watchdog as
    a stall, not an error in the policy.
    """

    def __init__(self, plan: SchedulePlan, num_processors: int,
                 is_active: Callable[[int], bool]) -> None:
        self.plan = plan
        self.num_processors = num_processors
        self.is_active = is_active
        self.cursor = 0            # position in plan.prefix
        self.grant_index = 0       # policy grants issued so far
        self.skipped_prefix = 0    # infeasible prefix entries dropped
        self._priorities = plan.priorities(num_processors)
        self._changes = list(plan.change_points)

    def _feasible(self, proc: int, pending: list[Chunk]) -> bool:
        """Can ``proc`` ever produce another commit?"""
        if proc < 0 or proc >= self.num_processors:
            return False
        if any(chunk.processor == proc for chunk in pending):
            return True
        return self.is_active(proc)

    def _apply_change_points(self) -> None:
        while self._changes and self.grant_index >= self._changes[0]:
            self._changes.pop(0)
            active = [proc for proc in range(self.num_processors)
                      if self.is_active(proc)]
            if len(active) < 2:
                continue
            top = max(active, key=lambda proc: self._priorities[proc])
            self._priorities[top] = min(self._priorities.values()) - 1

    def _target(self, pending: list[Chunk]) -> int | None:
        """The processor whose chunk must commit next, or None."""
        while self.cursor < len(self.plan.prefix):
            proc = self.plan.prefix[self.cursor]
            if self._feasible(proc, pending):
                return proc
            self.cursor += 1       # dead prescription: skip it
            self.skipped_prefix += 1
        if self.plan.seed is None:
            return None            # arrival-order fallback
        self._apply_change_points()
        candidates = [proc for proc in range(self.num_processors)
                      if self._feasible(proc, pending)]
        if not candidates:
            return None
        return max(candidates, key=lambda proc: self._priorities[proc])

    def select(self, pending: list[Chunk], committing: list[Chunk],
               now: float) -> Chunk | None:
        """The prescribed processor's oldest pending chunk -- waiting
        for it if it has not requested yet -- or arrival order when the
        plan prescribes nothing."""
        target = self._target(pending)
        if target is None:
            if self.cursor < len(self.plan.prefix):
                return None        # waiting on the prescribed processor
            if not pending:
                return None
            head = min(pending, key=arrival_key)
            if any(ArrivalOrderPolicy._overlaps(head, other)
                   for other in committing):
                return None
            return head
        heads = [chunk for chunk in pending if chunk.processor == target]
        if not heads:
            return None            # target is active; wait for it
        head = min(heads, key=arrival_key)
        if any(ArrivalOrderPolicy._overlaps(head, other)
               for other in committing):
            return None            # wait, never overtake
        return head

    def on_grant(self, chunk: Chunk, now: float) -> None:
        """Advance the prefix cursor / grant index."""
        if (self.cursor < len(self.plan.prefix)
                and self.plan.prefix[self.cursor] == chunk.processor):
            self.cursor += 1
        self.grant_index += 1

    def finish(self) -> None:
        """Nothing to verify: unconsumed prefix entries are legal
        (the prescription outlived the execution)."""


class RoundRobinPolicy:
    """PicoLog's predefined commit order: a circulating commit token.

    ``is_active`` reports whether a processor can ever commit again;
    the token skips permanently-idle processors (their inactivity is an
    architectural condition, so the skip pattern is reproducible in
    replay).  ``slot_gate`` (replay only) reports, for a processor whose
    next commit must wait for a recorded commit slot (an interrupt
    handler on an idle processor), the slot it is gated on.
    """

    def __init__(
        self,
        num_processors: int,
        is_active: Callable[[int], bool],
        slot_gate: Callable[[int], int | None] | None = None,
        grant_count: Callable[[], int] | None = None,
        dma_hold: Callable[[], bool] | None = None,
        hop_cycles: float = 0.0,
        wakeup: Callable[[float], None] | None = None,
    ) -> None:
        self.num_processors = num_processors
        self.is_active = is_active
        self.slot_gate = slot_gate or (lambda proc: None)
        self.grant_count = grant_count or (lambda: 0)
        # Replay only: while a recorded DMA burst is due at the current
        # commit slot, no processor grant may be issued -- the recorded
        # order places the DMA *before* the next chunk, and the machine
        # can only apply it against a quiescent commit pipeline.
        # Granting past it would push the burst one slot late.
        self.dma_hold = dma_hold or (lambda: False)
        # Physical token-passing latency: the commit token takes
        # ``hop_cycles`` to travel to the next processor (Table 6's
        # token roundtrips are hundreds to thousands of cycles).
        # ``wakeup`` lets the machine schedule a re-arbitration when a
        # token hop completes.
        self.hop_cycles = hop_cycles
        self._wakeup = wakeup or (lambda time: None)
        self.pointer = 0
        self.pointer_since = 0.0
        self.stats = TokenStats()
        self._last_visit_proc0: float | None = None
        self._token_checked = False

    def _advance(self, now: float) -> None:
        self.pointer = (self.pointer + 1) % self.num_processors
        self.pointer_since = max(now, self.pointer_since) + self.hop_cycles
        self._token_checked = False
        if self.hop_cycles:
            self._wakeup(self.pointer_since)
        if self.pointer == 0:
            if self._last_visit_proc0 is not None:
                self.stats.roundtrip_cycles.append(
                    self.pointer_since - self._last_visit_proc0)
            self._last_visit_proc0 = self.pointer_since

    def _eligible(self, proc: int) -> bool:
        gate = self.slot_gate(proc)
        if gate is not None:
            return gate <= self.grant_count()
        return self.is_active(proc)

    def _skip_idle(self, now: float) -> bool:
        """Move the token past permanently-idle processors.

        Returns False -- without burning token hops -- when no
        processor can ever commit again.
        """
        if not any(self._eligible(proc)
                   for proc in range(self.num_processors)):
            return False
        for _ in range(self.num_processors):
            if self._eligible(self.pointer):
                return True
            self._advance(now)
        return False

    def select(self, pending: list[Chunk], committing: list[Chunk],
               now: float) -> Chunk | None:
        """The oldest pending request of the token holder, if any and
        if it does not conflict with an in-flight commit."""
        if self.dma_hold():
            return None  # a recorded DMA burst owns this commit slot
        if not self._skip_idle(now):
            return None
        if now < self.pointer_since:
            return None  # the token is still in flight to the holder
        holder = self.pointer
        for chunk in pending:
            if chunk.processor != holder:
                continue
            if any(ArrivalOrderPolicy._overlaps(chunk, other)
                   for other in committing):
                return None  # the holder must wait; nobody overtakes
            if not self._token_checked:
                self._token_checked = True
                if chunk.complete_time <= self.pointer_since:
                    self.stats.ready_count += 1
                    self.stats.wait_token_cycles.append(
                        max(0.0, now - chunk.complete_time))
                else:
                    self.stats.not_ready_count += 1
                    self.stats.wait_complete_cycles.append(
                        max(0.0, chunk.complete_time - self.pointer_since))
            return chunk
        return None

    def on_grant(self, chunk: Chunk, now: float) -> None:
        """Pass the token to the next processor."""
        if chunk.processor < self.num_processors:
            if not self._token_checked:
                # The request arrived while the token was already here.
                self.stats.not_ready_count += 1
                self.stats.wait_complete_cycles.append(
                    max(0.0, chunk.complete_time - self.pointer_since))
            self._advance(now)

    def finish(self) -> None:
        """Nothing to flush."""


class PIReplayPolicy:
    """Replay-mode policy: grant exactly in PI-log order."""

    def __init__(self, pi_entries: list[int], dma_proc_id: int) -> None:
        self.entries = pi_entries
        self.dma_proc_id = dma_proc_id
        self.cursor = 0

    def peek(self) -> int | None:
        """Next procID to commit, or None at end of log."""
        if self.cursor >= len(self.entries):
            return None
        return self.entries[self.cursor]

    def next_is_dma(self) -> bool:
        """True when the next PI entry is the DMA pseudo-processor."""
        return self.peek() == self.dma_proc_id

    def consume_dma(self) -> None:
        """Advance past a DMA entry (the machine applied the DMA)."""
        if not self.next_is_dma():
            raise ReplayDivergenceError(
                "consume_dma called but the next PI entry is not DMA",
                proc_id=self.dma_proc_id, chunk_index=self.cursor,
                expected=self.peek(), actual=self.dma_proc_id)
        self.cursor += 1

    def select(self, pending: list[Chunk], committing: list[Chunk],
               now: float) -> Chunk | None:
        """The oldest pending request of the processor the PI log names
        next.

        When replay permits parallel commit (no perturbation), the next
        chunk still may not overlap an in-flight commit -- it must wait
        for the conflicting commit to finish, exactly as in recording.
        """
        expected = self.peek()
        if expected is None or expected == self.dma_proc_id:
            return None
        for chunk in pending:
            if chunk.processor != expected:
                continue
            if any(ArrivalOrderPolicy._overlaps(chunk, other)
                   for other in committing):
                return None  # PI order is total: wait, never overtake
            return chunk
        return None

    def on_grant(self, chunk: Chunk, now: float) -> None:
        """Consume the PI entry just enforced."""
        if self.peek() != chunk.processor:
            raise ReplayDivergenceError(
                f"granted processor {chunk.processor} but PI log expects "
                f"{self.peek()} at position {self.cursor}",
                proc_id=chunk.processor, chunk_index=self.cursor,
                expected=self.peek(), actual=chunk.processor)
        self.cursor += 1

    def finish(self) -> None:
        """Verify the whole log was consumed."""
        if self.cursor != len(self.entries):
            raise ReplayDivergenceError(
                f"replay ended with {len(self.entries) - self.cursor} "
                f"unconsumed PI entries",
                proc_id=self.peek(), chunk_index=self.cursor,
                expected=self.peek())


class StrataReplayPolicy:
    """Replay from a stratified PI log (Section 4.3).

    Within a stratum, chunks of different processors have no conflicts
    and may commit in any order; the policy only enforces that each
    processor commits exactly its counted number of chunks before the
    next stratum opens.
    """

    def __init__(self, strata: list[tuple[int, ...]],
                 dma_slot: int) -> None:
        self.strata = strata
        self.dma_slot = dma_slot
        self.index = 0
        self._remaining = list(strata[0]) if strata else []

    def _open_next(self) -> None:
        while self.index < len(self.strata) and not any(self._remaining):
            self.index += 1
            if self.index < len(self.strata):
                self._remaining = list(self.strata[self.index])

    def next_is_dma(self) -> bool:
        """DMA commits occupy a dedicated counter slot in each stratum
        vector; a pending DMA count means DMA must commit within the
        current stratum.  The machine applies it eagerly."""
        self._open_next()
        return (self.index < len(self.strata)
                and self.dma_slot < len(self._remaining)
                and self._remaining[self.dma_slot] > 0)

    def consume_dma(self) -> None:
        """Account an applied DMA against the current stratum."""
        if not self.next_is_dma():
            raise ReplayDivergenceError(
                "no DMA due in the current stratum",
                proc_id=self.dma_slot, chunk_index=self.index)
        self._remaining[self.dma_slot] -= 1

    def select(self, pending: list[Chunk], committing: list[Chunk],
               now: float) -> Chunk | None:
        """Any pending chunk with remaining quota in the current
        stratum."""
        self._open_next()
        if self.index >= len(self.strata):
            return None
        for chunk in pending:
            proc = chunk.processor
            if proc >= len(self._remaining) or self._remaining[proc] <= 0:
                continue
            if any(ArrivalOrderPolicy._overlaps(chunk, other)
                   for other in committing):
                continue  # within a stratum another order is legal
            return chunk
        return None

    def on_grant(self, chunk: Chunk, now: float) -> None:
        """Debit the granted processor's stratum quota."""
        if self._remaining[chunk.processor] <= 0:
            raise ReplayDivergenceError(
                f"processor {chunk.processor} exceeded its quota in "
                f"stratum {self.index}",
                proc_id=chunk.processor, chunk_index=self.index,
                expected=0, actual=1)
        self._remaining[chunk.processor] -= 1

    def finish(self) -> None:
        """Verify every stratum was fully consumed."""
        self._open_next()
        if self.index < len(self.strata):
            raise ReplayDivergenceError(
                f"replay ended inside stratum {self.index} of "
                f"{len(self.strata)}",
                chunk_index=self.index,
                expected=tuple(self.strata[self.index]),
                actual=tuple(self._remaining))


class CommitArbiter:
    """Grants chunk commits under a pluggable ordering policy."""

    def __init__(
        self,
        policy,
        max_concurrent: int,
        on_grant: Callable[[Chunk, float], None],
        dma_proc_id: int | None = None,
        head_filter: Callable[[Chunk], bool] | None = None,
        tracer=None,
    ) -> None:
        self.policy = policy
        self.max_concurrent = max_concurrent
        self._on_grant = on_grant
        self.dma_proc_id = dma_proc_id
        self._head_filter = head_filter or (lambda chunk: True)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._m_grants = self.tracer.metrics.counter("arbiter_grants")
        self.pending: list[Chunk] = []
        self.committing: list[Chunk] = []
        self.grant_count = 0
        self._reserved_processor: int | None = None
        self.grants_log: list[int] = []
        self.halted = False

    def halt(self) -> None:
        """Stop granting permanently (bounded interval replay)."""
        self.halted = True

    def receive_request(self, chunk: Chunk, now: float) -> None:
        """A commit request arrives (message 1/2 of Figure 4)."""
        if chunk.state is ChunkState.SQUASHED:
            return  # stale: the chunk died while the request was in flight
        chunk.state = ChunkState.REQUESTED
        chunk.request_time = now
        self.pending.append(chunk)
        self.try_grant(now)

    def drop_stale(self) -> None:
        """Purge squashed chunks from the pending queue."""
        self.pending = [c for c in self.pending
                        if c.state is not ChunkState.SQUASHED]

    def reserve_continuation(self, processor: int) -> None:
        """The next grant must go to ``processor``'s continuation piece
        (split-chunk replay, Section 4.2.3); it bypasses the policy and
        consumes no ordering entry."""
        self._reserved_processor = processor

    def try_grant(self, now: float) -> None:
        """Grant as many pending requests as policy and concurrency
        allow."""
        if self.halted:
            return
        self.drop_stale()
        while len(self.committing) < self.max_concurrent:
            chunk = self._select(now)
            if chunk is None:
                return
            self.pending.remove(chunk)
            chunk.state = ChunkState.COMMITTING
            chunk.grant_time = now
            self.committing.append(chunk)
            self._m_grants.inc()
            if self.tracer.enabled:
                is_dma = chunk.processor == self.dma_proc_id
                self.tracer.instant(
                    "arbiter",
                    ("grant dma" if is_dma
                     else f"grant p{chunk.processor}"),
                    now, category="grant",
                    proc=("dma" if is_dma else chunk.processor),
                    seq=chunk.logical_seq, piece=chunk.piece_index,
                    slot=chunk.grant_slot,
                    in_flight=len(self.committing))
                if isinstance(self.policy, RoundRobinPolicy):
                    self.tracer.instant(
                        "token", f"token@p{self.policy.pointer}",
                        now, category="token",
                        holder=self.policy.pointer)
            if isinstance(self.policy, RoundRobinPolicy):
                self.policy.stats.parallel_commit_samples.append(
                    len(self.committing))
            self._on_grant(chunk, now)

    def _select(self, now: float) -> Chunk | None:
        if self._reserved_processor is not None:
            for chunk in self.pending:
                if (chunk.processor == self._reserved_processor
                        and chunk.piece_index > 0):
                    self._reserved_processor = None
                    chunk.grant_slot = self.grant_count
                    return chunk
            return None  # the continuation has not arrived yet
        # DMA bypass: the DMA engine is not part of any round-robin or
        # arrival queue discipline; it commits as soon as its writes do
        # not conflict with an in-flight commit (Section 3.3).  Its
        # grant does not advance the chunk-commit slot counter.
        if self.dma_proc_id is not None:
            for chunk in self.pending:
                if chunk.processor != self.dma_proc_id:
                    continue
                if any(ArrivalOrderPolicy._overlaps(chunk, other)
                       for other in self.committing):
                    break
                chunk.grant_slot = self.grant_count
                self.grants_log.append(chunk.processor)
                return chunk
        # Only a processor's oldest uncommitted chunk may be granted;
        # commit-request reordering in flight (e.g. replay stall noise)
        # must not reorder same-processor commits.
        heads = [c for c in self.pending if self._head_filter(c)]
        chunk = self.policy.select(heads, self.committing, now)
        if chunk is not None:
            self.policy.on_grant(chunk, now)
            chunk.grant_slot = self.grant_count
            self.grant_count += 1
            self.grants_log.append(chunk.processor)
        return chunk

    def release(self, chunk: Chunk) -> None:
        """Free a finished commit's slot without re-arbitrating.

        The replay machine uses this to apply any DMA bursts that the
        ordering log places *before* the next grant (the DMA must see a
        quiescent commit pipeline), then calls :meth:`try_grant`.
        """
        if chunk in self.committing:
            self.committing.remove(chunk)

    def commit_finished(self, chunk: Chunk, now: float) -> None:
        """A commit fully propagated; free its slot and re-arbitrate."""
        self.release(chunk)
        self.try_grant(now)

    @property
    def has_reservation(self) -> bool:
        """True while a split logical chunk awaits its continuation
        piece; nothing (not even DMA) may be ordered in between."""
        return self._reserved_processor is not None

    def has_work(self) -> bool:
        """True while requests are pending or commits are in flight."""
        return bool(self.pending) or bool(self.committing)
