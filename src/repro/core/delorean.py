"""DeLoreanSystem: the public record/replay API.

This is the façade a user of the library interacts with::

    from repro import DeLoreanSystem, ExecutionMode
    from repro.workloads import splash2_program

    program = splash2_program("fft", scale=0.25, seed=7)
    system = DeLoreanSystem(mode=ExecutionMode.ORDER_ONLY)
    recording = system.record(program)
    result = system.replay(recording)
    assert result.determinism.matches

``record`` runs the initial execution on the chunk-based machine and
returns a :class:`~repro.core.recorder.Recording` (PI/CS/Interrupt/IO/
DMA logs plus verification instrumentation).  ``replay`` re-executes
the program under the recorded interleaving -- optionally with the
paper's timing perturbation -- and verifies that the replayed commits,
values and final memory match the recording exactly.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.modes import ExecutionMode, ModeConfig, preferred_config
from repro.core.recorder import Recording
from repro.core.replayer import ReplayPerturbation, ReplayResult
from repro.errors import ConfigurationError, ReplayDivergenceError
from repro.machine.program import Program
from repro.machine.system import record_execution, replay_execution
from repro.machine.timing import MachineConfig


class DeLoreanSystem:
    """A configured DeLorean machine: record and replay executions."""

    def __init__(
        self,
        mode: ExecutionMode = ExecutionMode.ORDER_ONLY,
        machine_config: MachineConfig | None = None,
        mode_config: ModeConfig | None = None,
        chunk_size: int | None = None,
        stratify: bool = False,
        chunks_per_stratum: int = 1,
        stochastic_overflow_rate: float = 0.0015,
    ) -> None:
        if mode_config is not None and mode_config.mode is not mode:
            raise ConfigurationError(
                f"mode_config is for {mode_config.mode}, not {mode}")
        self.machine_config = machine_config or MachineConfig()
        config = mode_config or preferred_config(mode)
        if chunk_size is not None:
            config = config.with_chunk_size(chunk_size)
        if stratify:
            config = config.with_stratification(chunks_per_stratum)
        self.mode_config = config
        self.stochastic_overflow_rate = stochastic_overflow_rate

    @property
    def mode(self) -> ExecutionMode:
        """The configured execution mode."""
        return self.mode_config.mode

    def record(self, program: Program,
               max_events: int | None = None,
               checkpoint_every: int = 0,
               tracer=None,
               schedule=None) -> Recording:
        """Run the initial execution and capture its logs.

        ``checkpoint_every`` takes an interval checkpoint every N
        logical commits (Appendix B / Section 3.3's pairing with
        ReVive/SafetyNet); the checkpoints land on
        ``recording.interval_checkpoints`` and seed
        :meth:`replay_interval`.  ``tracer`` (an
        :class:`~repro.telemetry.tracer.EventTracer`) captures the
        run's timeline and metrics.  ``schedule`` (a
        :class:`~repro.core.arbiter.SchedulePlan`) perturbs the
        arbiter's grant order for schedule-space exploration; the
        resulting recording replays the perturbed order like any
        other (rejected in predefined-order modes, which have no PI
        log to replay a forced order from).
        """
        # The machine's standard chunk size follows the mode config.
        machine_config = replace(
            self.machine_config,
            standard_chunk_size=self.mode_config.standard_chunk_size)
        return record_execution(
            program,
            machine_config,
            self.mode_config,
            stochastic_overflow_rate=self.stochastic_overflow_rate,
            max_events=max_events,
            checkpoint_every=checkpoint_every,
            tracer=tracer,
            schedule=schedule,
        )

    def replay(
        self,
        recording: Recording,
        perturbation: ReplayPerturbation | None = None,
        use_strata: bool | None = None,
        require_determinism: bool = False,
        max_events: int | None = None,
        tracer=None,
    ) -> ReplayResult:
        """Deterministically replay a recording.

        ``perturbation`` injects the paper's replay-timing noise
        (Section 6.2.1); pass ``ReplayPerturbation()`` to reproduce the
        replay-speed methodology or leave ``None`` for noise-free
        replay.  ``use_strata`` replays from the stratified PI log
        instead of the plain one.  With ``require_determinism`` the
        call raises :class:`ReplayDivergenceError` on any mismatch
        instead of returning a failing report.  ``tracer`` captures
        the replay's timeline and metrics.
        """
        result = replay_execution(
            recording,
            perturbation=perturbation,
            use_strata=use_strata,
            stochastic_overflow_rate=(
                self.stochastic_overflow_rate if perturbation else 0.0),
            max_events=max_events,
            tracer=tracer,
        )
        if require_determinism and not result.determinism.matches:
            raise ReplayDivergenceError(result.determinism.summary())
        return result

    def replay_interval(
        self,
        recording: Recording,
        checkpoint=None,
        at_commit: int | None = None,
        length: int | None = None,
        perturbation: ReplayPerturbation | None = None,
        require_determinism: bool = False,
        max_events: int | None = None,
    ) -> ReplayResult:
        """Replay the interval I(n, m) from a commit-boundary
        checkpoint (Appendix B).

        Pass either ``checkpoint`` (an
        :class:`~repro.core.interval.IntervalCheckpoint` from
        ``recording.interval_checkpoints``) or ``at_commit`` to pick
        the newest checkpoint at or before that global commit count.
        ``length`` bounds the interval to m commits (default: to the
        end of the recording).  Verification compares the replayed
        window.
        """
        if checkpoint is None:
            store = recording.interval_checkpoints
            if store is None or len(store) == 0:
                raise ConfigurationError(
                    "the recording has no interval checkpoints; record "
                    "with checkpoint_every=N")
            if at_commit is None:
                raise ConfigurationError(
                    "pass a checkpoint or an at_commit position")
            checkpoint = store.at_or_before(at_commit)
        result = replay_execution(
            recording,
            perturbation=perturbation,
            use_strata=False,
            stochastic_overflow_rate=(
                self.stochastic_overflow_rate if perturbation else 0.0),
            max_events=max_events,
            start_checkpoint=checkpoint,
            stop_after=length or 0,
        )
        if require_determinism and not result.determinism.matches:
            raise ReplayDivergenceError(result.determinism.summary())
        return result

    def record_and_verify(self, program: Program) -> \
            tuple[Recording, ReplayResult]:
        """Record, then immediately replay with verification on."""
        recording = self.record(program)
        result = self.replay(recording, require_determinism=True)
        return recording, result
