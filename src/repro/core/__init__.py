"""DeLorean proper: modes, logs, arbiter, recorder, stratifier, replayer.

The public entry point is :class:`~repro.core.delorean.DeLoreanSystem`,
which records an execution of a concurrent program under a chosen
execution mode (Order&Size, OrderOnly, PicoLog -- Table 2) and
deterministically replays the resulting :class:`~repro.core.recorder.Recording`.
"""

from repro.core.modes import ExecutionMode, ModeConfig, preferred_config
from repro.core.logs import (
    ChunkSizeLog,
    DMALog,
    InterruptLog,
    IOLog,
    MemoryOrderingLog,
    PILog,
)
from repro.core.recorder import Recording
from repro.core.replayer import ReplayResult
from repro.core.delorean import DeLoreanSystem
from repro.core.serialization import load_recording, save_recording

__all__ = [
    "ExecutionMode",
    "ModeConfig",
    "preferred_config",
    "PILog",
    "ChunkSizeLog",
    "InterruptLog",
    "IOLog",
    "DMALog",
    "MemoryOrderingLog",
    "Recording",
    "ReplayResult",
    "DeLoreanSystem",
    "save_recording",
    "load_recording",
]
