"""The DeLorean recorder and the Recording it produces.

The recorder is a set of hooks the machine calls during the initial
execution:

* ``on_grant`` -- the arbiter granted a chunk commit: append the procID
  to the PI log (Order&Size/OrderOnly) and feed the Stratifier.
* ``on_commit`` -- a chunk's commit fully propagated: account its size
  in the CS log (every chunk in Order&Size; only non-deterministic
  truncations otherwise), and capture Interrupt/IO log entries.
* ``on_dma`` -- a DMA burst committed: log its data (and, in PicoLog,
  its commit slot) and its PI entry.

The resulting :class:`Recording` bundles the memory-ordering log, the
input logs, the initial checkpoint, and -- clearly separated --
*verification instrumentation* (commit fingerprints and the final
memory image) that a real hardware recorder would not keep but that our
test suite uses to prove replay determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chunks.chunk import Chunk
from repro.core.logs import (
    ChunkSizeLog,
    DMALog,
    InterruptEntry,
    InterruptLog,
    IOLog,
    MemoryOrderingLog,
    PILog,
)
from repro.core.modes import ExecutionMode, ModeConfig
from repro.core.stratifier import Stratifier
from repro.analysis.stats import RunStats
from repro.chunks.signature import Signature
from repro.machine.timing import MachineConfig
from repro.telemetry.tracer import NULL_TRACER


class Recorder:
    """Log-producing hooks attached to a recording machine."""

    def __init__(self, machine_config: MachineConfig,
                 mode_config: ModeConfig, tracer=None) -> None:
        self.machine_config = machine_config
        self.mode_config = mode_config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.pi_log = PILog(machine_config.pi_entry_bits)
        self.cs_logs = {
            proc: ChunkSizeLog(mode_config)
            for proc in range(machine_config.num_processors)}
        self.interrupt_logs = {
            proc: InterruptLog()
            for proc in range(machine_config.num_processors)}
        self.io_logs = {
            proc: IOLog()
            for proc in range(machine_config.num_processors)}
        self.dma_log = DMALog()
        # Stratifiers run alongside whenever a PI log exists, one per
        # Figure 9 configuration (1/3/7 chunks per processor per
        # stratum) plus the configured cap, so every recording carries
        # the full stratified-size comparison.  Only the configured
        # cap's stratified log is *authoritative* for replay.
        self.stratifiers: dict[int, Stratifier] = {}
        if mode_config.mode.has_pi_log:
            caps = {1, 3, 7, mode_config.chunks_per_stratum}
            self.stratifiers = {
                cap: Stratifier(
                    num_slots=machine_config.num_processors + 1,
                    chunks_per_stratum=cap,
                    signature_config=machine_config.signature,
                )
                for cap in sorted(caps)}

    @property
    def stratifier(self) -> Stratifier | None:
        """The Stratifier for the configured chunks-per-stratum cap."""
        if not self.stratifiers:
            return None
        return self.stratifiers[self.mode_config.chunks_per_stratum]

    def on_grant(self, chunk: Chunk) -> None:
        """Arbiter granted a commit: update the interleaving logs."""
        if chunk.piece_index > 0:
            return  # continuation pieces share the parent's entry
        if self.mode_config.mode.has_pi_log:
            self.pi_log.append(chunk.processor)
            for stratifier in self.stratifiers.values():
                stratifier.observe(
                    chunk.processor, chunk.read_signature,
                    chunk.write_signature)
            if self.tracer.enabled:
                self.tracer.counter(
                    "log", "pi_bits", chunk.grant_time,
                    bits=self.pi_log.size_bits)

    def on_commit(self, chunk: Chunk) -> None:
        """A chunk commit finalized: size, interrupt and I/O logging."""
        self.cs_logs[chunk.processor].note_commit(
            size=chunk.instructions,
            truncated=chunk.truncation.is_nondeterministic,
        )
        if self.tracer.enabled:
            self.tracer.counter(
                "log", "cs_bits", chunk.commit_time,
                bits=sum(log.size_bits
                         for log in self.cs_logs.values()))
        if chunk.is_handler and chunk.piece_index == 0:
            event = chunk.handler_event
            slot = (chunk.grant_slot
                    if self.mode_config.mode.predefined_order
                    else 0)
            self.interrupt_logs[chunk.processor].append(InterruptEntry(
                chunk_id=chunk.logical_seq,
                vector=event.vector,
                payload=event.payload,
                handler_ops=event.handler_ops,
                high_priority=event.high_priority,
                commit_slot=slot,
            ))
        for value in chunk.io_values:
            self.io_logs[chunk.processor].append(value)

    def on_dma_grant(self, write_signature: Signature) -> None:
        """A DMA burst was granted: record its interleaving position.

        Like processor chunks, the DMA's PI entry is written at *grant*
        time so the PI log is exactly the commit (grant) order even
        when a chunk and a DMA burst are in flight simultaneously.
        """
        if self.mode_config.mode.has_pi_log:
            self.pi_log.append(self.machine_config.dma_proc_id)
            empty_reads = Signature(self.machine_config.signature)
            for stratifier in self.stratifiers.values():
                stratifier.observe(
                    self.machine_config.dma_proc_id, empty_reads,
                    write_signature)

    def on_dma_commit(self, writes: dict[int, int],
                      grant_slot: int) -> None:
        """A DMA burst's commit finalized: log its data (Section 3.3).

        In PicoLog the arbiter also records the burst's commit slot.
        """
        if self.mode_config.mode.has_pi_log:
            self.dma_log.append(writes)
        else:
            self.dma_log.append(writes, commit_slot=grant_slot)

    def finish(self) -> None:
        """Flush end-of-run state (the Stratifiers' partial strata)."""
        for stratifier in self.stratifiers.values():
            stratifier.finish()

    def memory_ordering_log(self) -> MemoryOrderingLog:
        """The structure whose size Figures 6-9 report."""
        log = MemoryOrderingLog(
            pi_log=self.pi_log,
            cs_logs=self.cs_logs,
            mode=self.mode_config.mode,
        )
        if self.stratifier is not None:
            log.stratified_pi_bits = self.stratifier.size_bits
            log.stratified_pi_compressed_bits = (
                self.stratifier.compressed_size_bits())
            log.stratified_by_cap = {
                cap: (s.size_bits, s.compressed_size_bits())
                for cap, s in self.stratifiers.items()}
        return log


@dataclass
class Recording:
    """Everything needed to deterministically replay an execution.

    The ``fingerprints`` / ``final_memory`` / ``final_thread_keys``
    fields are verification instrumentation (see module docstring), not
    part of the hardware log; log-size accounting never includes them.
    """

    mode_config: ModeConfig
    machine_config: MachineConfig
    program: object
    pi_log: PILog
    cs_logs: dict[int, ChunkSizeLog]
    interrupt_logs: dict[int, InterruptLog]
    io_logs: dict[int, IOLog]
    dma_log: DMALog
    strata: list[tuple[int, ...]] = field(default_factory=list)
    stratified: bool = False
    # Verification instrumentation:
    fingerprints: list[tuple] = field(default_factory=list)
    per_proc_fingerprints: dict[int, list[tuple]] = field(
        default_factory=dict)
    final_memory: dict[int, int] = field(default_factory=dict)
    final_thread_keys: dict[int, tuple] = field(default_factory=dict)
    stats: RunStats = field(default_factory=RunStats)
    memory_ordering: MemoryOrderingLog | None = None
    # Commit-boundary checkpoints for interval replay (Appendix B).
    interval_checkpoints: object | None = None

    @property
    def total_commits(self) -> int:
        """Committed chunks across all processors."""
        return self.stats.total_committed_chunks

    @property
    def total_committed_instructions(self) -> int:
        """Committed dynamic instructions across all processors."""
        return self.stats.total_committed_instructions

    def log_bits_per_proc_per_kiloinst(self, compressed: bool = True) -> \
            float:
        """Memory-ordering log size in the paper's headline metric."""
        if self.memory_ordering is None:
            return 0.0
        return self.memory_ordering.bits_per_proc_per_kiloinst(
            self.total_committed_instructions, compressed)
