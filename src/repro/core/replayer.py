"""Deterministic replay: log cursors, perturbation, and verification.

The :class:`ReplaySource` wraps a :class:`~repro.core.recorder.Recording`
with consuming cursors for every log.  During replay the machine asks
it for chunk-size targets (CS log), interrupt injections (Interrupt
log, keyed by processor-local chunkID), I/O load values (I/O log) and
DMA data (DMA log); the arbiter's replay policy consumes the PI log (or
strata, or enforces round-robin for PicoLog).  The source never touches
the original workload's event streams or the modeled I/O device -- that
separation is what makes the input-log tests meaningful.

:class:`ReplayPerturbation` reproduces the paper's replay-speed
methodology (Section 6.2.1): parallel commit disabled, arbitration
latency raised from 30 to 50 cycles, random 10-300-cycle stalls before
30% of commit operations, and a 1.5% hit/miss timing flip -- all of
which must *not* change the replayed architectural state, only its
timing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.stats import RunStats
from repro.chunks.chunk import TruncationReason
from repro.core.modes import ExecutionMode
from repro.core.recorder import Recording
from repro.errors import ReplayDivergenceError
from repro.machine.events import InterruptEvent


@dataclass(frozen=True)
class ReplayPerturbation:
    """Timing noise injected during replay (Section 6.2.1)."""

    seed: int = 12345
    commit_stall_probability: float = 0.30
    commit_stall_min_cycles: int = 10
    commit_stall_max_cycles: int = 300
    cache_flip_rate: float = 0.015
    disable_parallel_commit: bool = True
    # Replay proceeds under a hypervisor layer (Section 3.4.2) that
    # validates every chunk boundary against the logs.  Two timing-only
    # models of that cost are available: a fixed per-chunk validation
    # overhead (default), and -- more drastic -- shrinking the
    # speculative window to a single chunk.  Neither can change the
    # replayed architectural state (chunk contents depend solely on
    # pre-commit state); both only slow replay down.
    chunk_validation_cycles: float = 250.0
    single_chunk_window: bool = False

    @classmethod
    def none(cls) -> "ReplayPerturbation":
        """No injected noise (used by determinism unit tests that want
        a clean baseline; the property tests use real noise)."""
        return cls(commit_stall_probability=0.0, cache_flip_rate=0.0,
                   chunk_validation_cycles=0.0,
                   single_chunk_window=False)


class ReplaySource:
    """Consuming cursors over a recording's logs.

    ``start_checkpoint`` (interval replay, Appendix B) fast-forwards
    every cursor to the checkpoint's consumption state: I/O values and
    DMA bursts consumed by the prefix are skipped, and interrupt
    entries whose handler chunks already committed are passed over.
    CS-log lookups need no cursor -- they are keyed by absolute
    per-processor chunk sequence numbers.
    """

    def __init__(self, recording: Recording,
                 start_checkpoint=None) -> None:
        self.recording = recording
        config = recording.mode_config
        self._order_and_size = config.mode.logs_every_chunk_size
        if self._order_and_size:
            self._sizes = {
                proc: log.sizes_in_order()
                for proc, log in recording.cs_logs.items()}
        else:
            self._forced = {
                proc: log.truncations_by_seq()
                for proc, log in recording.cs_logs.items()}
        self._interrupt_cursor = {
            proc: 0 for proc in recording.interrupt_logs}
        self._io_cursor = {proc: 0 for proc in recording.io_logs}
        self._dma_cursor = 0
        self._dma_slot_cursor = 0
        if start_checkpoint is not None:
            for proc, consumed in start_checkpoint.io_consumed.items():
                if proc in self._io_cursor:
                    self._io_cursor[proc] = consumed
            self._dma_cursor = start_checkpoint.dma_consumed
            self._dma_slot_cursor = start_checkpoint.dma_consumed
            for proc, log in recording.interrupt_logs.items():
                committed = start_checkpoint.committed_counts.get(
                    proc, 0)
                cursor = 0
                while (cursor < len(log.entries)
                       and log.entries[cursor].chunk_id <= committed):
                    cursor += 1
                self._interrupt_cursor[proc] = cursor

    # -- chunk sizing ----------------------------------------------------

    def chunk_target(self, proc: int, seq: int) -> \
            tuple[int, TruncationReason]:
        """Instruction budget (and truncation reason to report when it
        is reached) for the chunk ``(proc, seq)``."""
        if self._order_and_size:
            sizes = self._sizes.get(proc, [])
            if seq - 1 < len(sizes):
                return max(1, sizes[seq - 1]), TruncationReason.CS_FORCED
            # Past the end of the log: the thread must be about to end.
            return (self.recording.mode_config.standard_chunk_size,
                    TruncationReason.SIZE_LIMIT)
        forced = self._forced.get(proc, {})
        if seq in forced:
            return max(1, forced[seq]), TruncationReason.CS_FORCED
        return (self.recording.mode_config.standard_chunk_size,
                TruncationReason.SIZE_LIMIT)

    # -- interrupts --------------------------------------------------------

    def maybe_interrupt(self, proc: int, next_seq: int) -> \
            InterruptEvent | None:
        """The interrupt to inject if the chunk about to be built is a
        logged handler chunk; consumes the entry."""
        log = self.recording.interrupt_logs.get(proc)
        if log is None:
            return None
        cursor = self._interrupt_cursor[proc]
        if cursor >= len(log.entries):
            return None
        entry = log.entries[cursor]
        if entry.chunk_id != next_seq:
            if entry.chunk_id < next_seq:
                raise ReplayDivergenceError(
                    f"processor {proc} passed interrupt chunkID "
                    f"{entry.chunk_id} without injecting its handler",
                    proc_id=proc, chunk_index=entry.chunk_id,
                    expected=entry.chunk_id, actual=next_seq)
            return None
        self._interrupt_cursor[proc] = cursor + 1
        return InterruptEvent(
            time=0.0,
            processor=proc,
            vector=entry.vector,
            payload=entry.payload,
            handler_ops=entry.handler_ops,
            high_priority=entry.high_priority,
            replay_chunk_id=entry.chunk_id,
        )

    def has_pending_interrupts(self, proc: int) -> bool:
        """True while logged handlers remain un-injected for ``proc``
        (keeps an otherwise-finished processor alive)."""
        log = self.recording.interrupt_logs.get(proc)
        if log is None:
            return False
        return self._interrupt_cursor[proc] < len(log.entries)

    def gate_for(self, proc: int, committed_count: int) -> int | None:
        """PicoLog: the commit slot gating ``proc``'s next commit.

        Returns the recorded slot when the next chunk ``proc`` will
        commit (``committed_count + 1``) is a logged handler chunk, or
        None otherwise.  Stateless in the injection cursor: the gate
        must hold from handler injection (which consumes the log entry)
        until the handler chunk actually commits.
        """
        if not self.recording.mode_config.mode.predefined_order:
            return None
        log = self.recording.interrupt_logs.get(proc)
        if log is None:
            return None
        for entry in log.entries:
            if entry.chunk_id > committed_count:
                if entry.chunk_id == committed_count + 1:
                    return entry.commit_slot
                return None
        return None

    # -- I/O ---------------------------------------------------------------

    def io_load(self, proc: int, port: int) -> int:
        """Next recorded I/O load value for ``proc`` (ports are
        implicit: values replay in program order, Section 4.2.2)."""
        log = self.recording.io_logs.get(proc)
        cursor = self._io_cursor.get(proc, 0)
        if log is None or cursor >= len(log.values):
            raise ReplayDivergenceError(
                f"processor {proc} performed an I/O load with an empty "
                f"I/O log (port {port})", proc_id=proc)
        self._io_cursor[proc] = cursor + 1
        return log.values[cursor]

    def io_store(self, proc: int, port: int, value: int) -> None:
        """I/O stores need no log; the replayed value equals the
        recorded one by determinism."""

    # -- DMA -----------------------------------------------------------------

    def next_dma_writes(self) -> dict[int, int]:
        """Consume the next DMA burst's data."""
        if self._dma_cursor >= len(self.recording.dma_log.entries):
            raise ReplayDivergenceError(
                "DMA commit due but the DMA log is exhausted",
                proc_id="dma", chunk_index=self._dma_cursor)
        entry = self.recording.dma_log.entries[self._dma_cursor]
        self._dma_cursor += 1
        return dict(entry.writes)

    def dma_due_at_slot(self, grant_count: int) -> bool:
        """PicoLog: is a DMA burst recorded at this commit slot?"""
        slots = self.recording.dma_log.commit_slots
        if self._dma_slot_cursor >= len(slots):
            return False
        return slots[self._dma_slot_cursor] <= grant_count

    def consume_dma_slot(self) -> None:
        """Advance the PicoLog DMA slot cursor."""
        self._dma_slot_cursor += 1

    def cursors(self) -> dict:
        """Absolute log-cursor positions (debugger/checkpoint support).

        All cursors count from the start of the *recording*, even for a
        source fast-forwarded by an interval checkpoint, so a snapshot
        of them can seed a new :class:`IntervalCheckpoint` directly.
        """
        return {
            "io": dict(self._io_cursor),
            "dma": self._dma_cursor,
            "interrupt": dict(self._interrupt_cursor),
        }

    def verify_fully_consumed(self) -> list[str]:
        """End-of-replay audit: every log cursor must be at its end.
        Returns a list of problems (empty when clean)."""
        problems = []
        for proc, cursor in self._interrupt_cursor.items():
            total = len(self.recording.interrupt_logs[proc].entries)
            if cursor != total:
                problems.append(
                    f"processor {proc}: {total - cursor} interrupt "
                    f"entries not injected")
        for proc, cursor in self._io_cursor.items():
            total = len(self.recording.io_logs[proc].values)
            if cursor != total:
                problems.append(
                    f"processor {proc}: {total - cursor} I/O values "
                    f"not consumed")
        if self._dma_cursor != len(self.recording.dma_log.entries):
            problems.append("DMA log not fully consumed")
        return problems


@dataclass
class DeterminismReport:
    """Outcome of comparing a replay against its recording."""

    matches: bool
    compared_chunks: int
    mismatches: list[str] = field(default_factory=list)
    #: Index of the first diverging global commit (ordered comparison
    #: only): every commit before it reproduced exactly.  None when the
    #: replay matched or the comparison was per-processor.  Salvage
    #: replay uses this to credit the verified prefix of a damaged
    #: recording before resyncing past the fault.
    first_mismatch: int | None = None

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.matches:
            return (f"deterministic: {self.compared_chunks} chunk "
                    f"commits reproduced exactly")
        head = "; ".join(self.mismatches[:3])
        return (f"DIVERGED ({len(self.mismatches)} mismatches): {head}")


@dataclass
class ReplayResult:
    """Everything a replay run produced."""

    stats: RunStats
    determinism: DeterminismReport
    final_memory: dict[int, int]
    perturbation: ReplayPerturbation

    @property
    def cycles(self) -> float:
        """Replay duration in cycles."""
        return self.stats.cycles


def verify_determinism(
    recording: Recording,
    replay_fingerprints: list[tuple],
    replay_per_proc: dict[int, list[tuple]],
    replay_final_memory: dict[int, int],
    replay_thread_keys: dict[int, tuple],
    ordered: bool,
    start_checkpoint=None,
    stop_after: int = 0,
) -> DeterminismReport:
    """Compare a replay's capture against the recording.

    ``ordered`` selects the comparison discipline: exact global commit
    order for PI-log/round-robin replay, per-processor order only for
    stratified replay (within a stratum the global order is legitimately
    free, Section 4.3).  For interval replay, only the commits after
    ``start_checkpoint`` are expected (the prefix was never executed).
    """
    expected_global = recording.fingerprints
    expected_per_proc = recording.per_proc_fingerprints
    if start_checkpoint is not None:
        expected_global = expected_global[
            start_checkpoint.commit_index:]
        dma_prefix = sum(
            1 for f in recording.fingerprints[
                :start_checkpoint.commit_index] if f[0] == "dma")
        dma_proc = recording.machine_config.dma_proc_id
        expected_per_proc = {}
        for proc, entries in recording.per_proc_fingerprints.items():
            if proc == dma_proc:
                expected_per_proc[proc] = entries[dma_prefix:]
            else:
                skip = start_checkpoint.committed_counts.get(proc, 0)
                expected_per_proc[proc] = entries[skip:]
    if stop_after:
        # Bounded replay of I(n, m): compare exactly the m-commit
        # window.  The replay may legally finalize a few extra
        # in-flight commits past the stop point; they are ignored, as
        # is the (mid-flight) final machine state.
        expected_global = expected_global[:stop_after]
        replay_fingerprints = replay_fingerprints[:stop_after]
    mismatches: list[str] = []
    first_mismatch: int | None = None
    compared = len(replay_fingerprints)
    if ordered:
        if len(expected_global) != len(replay_fingerprints):
            mismatches.append(
                f"commit count differs: recorded "
                f"{len(expected_global)}, replayed "
                f"{len(replay_fingerprints)}")
            first_mismatch = min(len(expected_global),
                                 len(replay_fingerprints))
        for index, (expected, actual) in enumerate(
                zip(expected_global, replay_fingerprints)):
            if expected != actual:
                if first_mismatch is None or index < first_mismatch:
                    first_mismatch = index
                mismatches.append(
                    f"commit #{index}: recorded {expected[:5]}..., "
                    f"replayed {actual[:5]}...")
                if len(mismatches) > 10:
                    break
    else:
        for proc, expected_list in expected_per_proc.items():
            actual_list = replay_per_proc.get(proc, [])
            if expected_list != actual_list:
                mismatches.append(
                    f"processor {proc}: chunk stream differs "
                    f"({len(expected_list)} recorded vs "
                    f"{len(actual_list)} replayed chunks)")
    if stop_after:
        return DeterminismReport(
            matches=not mismatches,
            compared_chunks=compared,
            mismatches=mismatches,
            first_mismatch=first_mismatch,
        )
    if recording.final_memory != replay_final_memory:
        missing = set(recording.final_memory) ^ set(replay_final_memory)
        diff = {a for a in (set(recording.final_memory)
                            & set(replay_final_memory))
                if recording.final_memory[a] != replay_final_memory[a]}
        mismatches.append(
            f"final memory differs: {len(missing)} addresses present in "
            f"only one image, {len(diff)} with different values")
    if recording.final_thread_keys != replay_thread_keys:
        mismatches.append("final thread architectural states differ")
    return DeterminismReport(
        matches=not mismatches,
        compared_chunks=compared,
        mismatches=mismatches,
        first_mismatch=first_mismatch,
    )


def make_perturbation_rng(perturbation: ReplayPerturbation) -> \
        random.Random:
    """The RNG driving injected replay noise (seeded, reproducible)."""
    return random.Random(perturbation.seed)
