"""DeLorean execution modes and their preferred configurations.

Table 2 of the paper defines three execution modes along two axes --
whether *chunking* is deterministic and whether the *commit
interleaving* is predefined:

* **Order&Size** -- non-deterministic chunking, recorded interleaving.
  The arbiter logs committing processor IDs (PI log) and every
  processor logs every chunk's size (CS log).
* **OrderOnly** -- deterministic chunking, recorded interleaving.  Only
  the PI log is needed, plus a tiny CS log for the rare chunks
  truncated non-deterministically.
* **PicoLog** -- deterministic chunking *and* predefined (round-robin)
  commit order.  No PI log at all; only the tiny CS log remains.

The preferred per-mode parameters come from Table 5: 2,000-instruction
chunks for Order&Size/OrderOnly, 1,000 for PicoLog; 4-bit PI entries;
variable 1-or-12-bit CS entries in Order&Size; 32-bit CS entries
(21-bit distance + 11-bit size, or 22 + 10 for PicoLog) otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


class ExecutionMode(enum.Enum):
    """The chunk-based execution modes of Table 2.

    The paper develops three; the fourth quadrant of its design-space
    table -- non-deterministic chunking with a *predefined* commit
    interleaving -- is dismissed as "unattractive: we save log space in
    the arbiter only to use more in the processors".  It is implemented
    here as ``SIZE_ONLY`` so that claim can be measured
    (``benchmarks/bench_table2_quadrants.py``).
    """

    ORDER_AND_SIZE = "order_and_size"
    ORDER_ONLY = "order_only"
    PICOLOG = "picolog"
    SIZE_ONLY = "size_only"

    @property
    def has_pi_log(self) -> bool:
        """Modes with a predefined commit order need no PI log."""
        return self in (ExecutionMode.ORDER_AND_SIZE,
                        ExecutionMode.ORDER_ONLY)

    @property
    def predefined_order(self) -> bool:
        """Round-robin commit initiation instead of a recorded order."""
        return not self.has_pi_log

    @property
    def logs_every_chunk_size(self) -> bool:
        """Non-deterministic chunking: every chunk's size is logged."""
        return self in (ExecutionMode.ORDER_AND_SIZE,
                        ExecutionMode.SIZE_ONLY)


@dataclass(frozen=True)
class ModeConfig:
    """Everything mode-specific about recording and replay.

    ``cs_distance_bits``/``cs_size_bits`` define the fixed 32-bit CS
    entry of OrderOnly/PicoLog (Table 5).  ``variable_truncation_rate``
    models Order&Size's variable-sized chunk environment: the paper
    artificially truncates 25% of chunks to a uniformly-distributed
    size.  ``stratify`` turns on the Section 4.3 PI-log stratification
    with at most ``chunks_per_stratum`` committed chunks per processor
    per stratum.
    """

    mode: ExecutionMode
    standard_chunk_size: int
    cs_distance_bits: int = 21
    cs_size_bits: int = 11
    variable_truncation_rate: float = 0.25
    min_artificial_chunk: int = 8
    stratify: bool = False
    chunks_per_stratum: int = 1

    def __post_init__(self) -> None:
        if self.standard_chunk_size < 8:
            raise ConfigurationError("standard chunk size must be >= 8")
        if self.cs_distance_bits + self.cs_size_bits > 64:
            raise ConfigurationError("CS entry exceeds 64 bits")
        if not 0.0 <= self.variable_truncation_rate <= 1.0:
            raise ConfigurationError(
                "variable truncation rate must be a probability")
        if self.stratify and not self.mode.has_pi_log:
            raise ConfigurationError(
                "stratification only applies to modes with a PI log")
        if self.chunks_per_stratum < 1:
            raise ConfigurationError("chunks_per_stratum must be >= 1")

    @property
    def max_cs_size(self) -> int:
        """Largest chunk size representable in a CS entry."""
        return (1 << self.cs_size_bits) - 1

    @property
    def max_cs_distance(self) -> int:
        """Largest inter-truncation distance representable."""
        return (1 << self.cs_distance_bits) - 1

    def with_chunk_size(self, size: int) -> "ModeConfig":
        """This configuration with a different standard chunk size.

        Used by the chunk-size sweeps of Figures 6-8 and 12.  As in the
        paper's experiments, the CS entry stays 32 bits wide: the size
        field grows to fit the new chunk size and the distance field
        shrinks to match ("we keep the CS log entry size constant, thus
        changing the distance bits", Section 5).
        """
        size_bits = size.bit_length()
        return replace(
            self,
            standard_chunk_size=size,
            cs_size_bits=size_bits,
            cs_distance_bits=max(1, 32 - size_bits),
        )

    def with_stratification(self, chunks_per_stratum: int) -> "ModeConfig":
        """This configuration with PI-log stratification enabled."""
        return replace(self, stratify=True,
                       chunks_per_stratum=chunks_per_stratum)


def preferred_config(mode: ExecutionMode) -> ModeConfig:
    """The paper's preferred configuration for each mode (Table 5)."""
    if mode is ExecutionMode.ORDER_AND_SIZE:
        return ModeConfig(
            mode=mode,
            standard_chunk_size=2000,
            cs_size_bits=11,
            variable_truncation_rate=0.25,
        )
    if mode is ExecutionMode.ORDER_ONLY:
        return ModeConfig(
            mode=mode,
            standard_chunk_size=2000,
            cs_distance_bits=21,
            cs_size_bits=11,
            variable_truncation_rate=0.0,
        )
    if mode is ExecutionMode.PICOLOG:
        return ModeConfig(
            mode=mode,
            standard_chunk_size=1000,
            cs_distance_bits=22,
            cs_size_bits=10,
            variable_truncation_rate=0.0,
        )
    if mode is ExecutionMode.SIZE_ONLY:
        # The unattractive quadrant: PicoLog's commit discipline with
        # Order&Size's chunking and per-chunk size logging.
        return ModeConfig(
            mode=mode,
            standard_chunk_size=1000,
            cs_size_bits=10,
            variable_truncation_rate=0.25,
        )
    raise ConfigurationError(f"unknown mode {mode!r}")
