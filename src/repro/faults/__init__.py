"""Deterministic fault injection, salvage replay, and chaos campaigns.

DeLorean's value proposition -- a tiny log deterministically
reconstructs a whole multiprocessor execution -- makes log corruption
the system's existential risk.  This package turns that risk into a
tested property:

* :mod:`repro.faults.plan` -- seeded :class:`FaultPlan` /
  :class:`FaultSpec`: deterministic perturbations at the blob, log,
  and runner layers.
* :mod:`repro.faults.injector` -- :class:`FaultInjector` applies specs
  (pure functions of their inputs) and :class:`FaultyJobFn` misbehaves
  inside runner workers.
* :mod:`repro.faults.salvage` -- :func:`salvage_replay` /
  :func:`salvage_from_blob`: replay damaged recordings as far as the
  surviving logs allow, reporting verified coverage.
* :mod:`repro.faults.campaign` -- record → inject → replay → classify
  campaigns over the runner pool, asserting the resilience invariant:
  every fault *detected* or *recovered*, never a silent wrong result.
"""

from repro.faults.campaign import (
    CampaignReport,
    ChaosSpec,
    execute_chaos_spec,
    run_campaign,
)
from repro.faults.injector import FaultInjector, FaultyJobFn
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.salvage import (
    SalvageReport,
    SalvageSegment,
    salvage_from_blob,
    salvage_replay,
)

__all__ = [
    "CampaignReport",
    "ChaosSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyJobFn",
    "SalvageReport",
    "SalvageSegment",
    "execute_chaos_spec",
    "run_campaign",
    "salvage_from_blob",
    "salvage_replay",
]
