"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is a pure value: a seed plus the list of
:class:`FaultSpec` perturbations it expands to.  Determinism is the
load-bearing property -- the same seed must always produce the same
plan, and applying the same spec to the same artifact must produce a
byte-identical result -- because chaos campaigns are only debuggable if
a failing fault can be replayed in isolation.  To that end specs avoid
anything size-dependent: a blob fault names a *fractional* position in
``[0, 1)`` (scaled to the blob at injection time), so a plan generated
before the recording exists still applies deterministically.

Three layers can be perturbed (see :mod:`repro.faults.injector`):

``blob``
    The serialized DLRN container: single-bit flips, truncation,
    whole-section drops and duplications.
``log``
    The in-memory :class:`~repro.core.recorder.Recording`: dropped or
    duplicated PI-log entries, corrupted chunk sizes, shifted interrupt
    chunk IDs, dropped or slot-shifted DMA bursts.
``runner``
    The experiment runner's workers: injected crashes, hangs, and
    slow-downs (expressed as rates on a
    :class:`~repro.faults.injector.FaultyJobFn`, not as specs, since
    worker faults are per-invocation rather than per-byte).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Fault kinds per layer, in the order the generator draws them.
BLOB_KINDS = ("bit_flip", "truncate", "drop_section", "dup_section")
LOG_KINDS = ("drop_pi", "dup_pi", "corrupt_cs", "shift_interrupt",
             "drop_dma", "shift_dma_slot")
KINDS_BY_LAYER = {"blob": BLOB_KINDS, "log": LOG_KINDS}


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic perturbation.

    ``position`` is a fraction in ``[0, 1)`` locating the fault within
    whatever it targets (byte offset in a blob, entry index in a log);
    ``index`` is an auxiliary draw (bit number for flips, duplication
    count, ...); ``delta`` is the signed magnitude for value-corrupting
    kinds; ``proc`` selects a per-processor log where relevant.
    """

    layer: str
    kind: str
    position: float
    index: int = 0
    proc: int = 0
    delta: int = 1

    def __post_init__(self) -> None:
        if self.layer not in KINDS_BY_LAYER:
            raise ConfigurationError(f"unknown fault layer {self.layer!r}")
        if self.kind not in KINDS_BY_LAYER[self.layer]:
            raise ConfigurationError(
                f"unknown {self.layer} fault kind {self.kind!r}")
        if not 0.0 <= self.position < 1.0:
            raise ConfigurationError(
                f"fault position {self.position} outside [0, 1)")

    def label(self) -> str:
        """Short stable identifier, e.g. ``blob:bit_flip@0.371``."""
        return f"{self.layer}:{self.kind}@{self.position:.3f}"

    def as_dict(self) -> dict:
        """JSON-friendly form (campaign reports)."""
        return {"layer": self.layer, "kind": self.kind,
                "position": self.position, "index": self.index,
                "proc": self.proc, "delta": self.delta}


@dataclass(frozen=True)
class FaultPlan:
    """A seed and the fault specs it deterministically expands to."""

    seed: int
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    @classmethod
    def generate(cls, seed: int, count: int,
                 layers: tuple[str, ...] = ("blob", "log"),
                 num_processors: int = 1) -> "FaultPlan":
        """Draw ``count`` faults from ``random.Random(seed)``.

        The draw sequence is fixed -- layer, kind, position, index,
        proc, delta, in that order, one fault at a time -- so a given
        (seed, count, layers, num_processors) tuple always yields the
        identical plan, across processes and platforms.
        """
        for layer in layers:
            if layer not in KINDS_BY_LAYER:
                raise ConfigurationError(
                    f"unknown fault layer {layer!r}")
        rng = random.Random(seed)
        faults = []
        for _ in range(count):
            layer = layers[rng.randrange(len(layers))]
            kinds = KINDS_BY_LAYER[layer]
            kind = kinds[rng.randrange(len(kinds))]
            faults.append(FaultSpec(
                layer=layer,
                kind=kind,
                position=rng.random(),
                index=rng.randrange(256),
                proc=rng.randrange(max(1, num_processors)),
                delta=rng.choice((-3, -2, -1, 1, 2, 3)),
            ))
        return cls(seed=seed, faults=tuple(faults))

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)
