"""Applying fault specs to blobs, recordings, and runner jobs.

Injection is deliberately *pure*: :func:`inject_blob` maps
``(blob, spec) -> blob`` with no hidden state, and
:func:`inject_recording` deep-copies before mutating, so the same spec
applied to the same artifact is byte-for-byte reproducible -- the
property the chaos tests pin down.

Runner-layer faults work differently: a worker crash is not a byte
edit but a behavior, so they are expressed as :class:`FaultyJobFn`, a
picklable wrapper around a real job function that deterministically
(per spec hash) misbehaves.  Crash-once semantics use marker files in
a shared ``state_dir``, because a retried job lands in a fresh worker
process with no memory of the first attempt.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.core.logs import CSEntry
from repro.core.recorder import Recording
from repro.core.serialization import container_frames
from repro.errors import ConfigurationError
from repro.faults.plan import FaultSpec


def _scaled(position: float, length: int) -> int:
    """Map a fractional position onto ``range(length)``."""
    if length <= 0:
        return 0
    return min(length - 1, int(position * length))


class FaultInjector:
    """Applies :class:`~repro.faults.plan.FaultSpec` perturbations."""

    def inject_blob(self, blob: bytes, spec: FaultSpec) -> bytes:
        """Return a damaged copy of a serialized recording."""
        if spec.layer != "blob":
            raise ConfigurationError(
                f"inject_blob got a {spec.layer!r}-layer fault")
        if spec.kind == "bit_flip":
            offset = _scaled(spec.position, len(blob))
            mutated = bytearray(blob)
            mutated[offset] ^= 1 << (spec.index % 8)
            return bytes(mutated)
        if spec.kind == "truncate":
            cut = max(1, _scaled(spec.position, len(blob)))
            return blob[:cut]
        # Section-granular faults need the v2 frame map.
        frames, _damage = container_frames(blob)
        if not frames:
            return blob
        frame = frames[_scaled(spec.position, len(frames))]
        if spec.kind == "drop_section":
            return blob[:frame.start] + blob[frame.end:]
        if spec.kind == "dup_section":
            section = blob[frame.start:frame.end]
            return blob[:frame.end] + section + blob[frame.end:]
        raise ConfigurationError(f"unknown blob fault {spec.kind!r}")

    def inject_recording(self, recording: Recording,
                         spec: FaultSpec) -> Recording:
        """Return a damaged deep copy of an in-memory recording.

        Mutations go straight at the ``entries`` lists, bypassing the
        append-time validation the logs normally enforce -- that is the
        point: the result models a recording whose invariants were
        broken in flight, and replay must *detect* it.
        """
        if spec.layer != "log":
            raise ConfigurationError(
                f"inject_recording got a {spec.layer!r}-layer fault")
        damaged = copy.deepcopy(recording)
        if spec.kind in ("drop_pi", "dup_pi"):
            entries = damaged.pi_log.entries
            if entries:
                index = _scaled(spec.position, len(entries))
                if spec.kind == "drop_pi":
                    del entries[index]
                else:
                    entries.insert(index, entries[index])
            return damaged
        if spec.kind == "corrupt_cs":
            procs = sorted(damaged.cs_logs)
            log = damaged.cs_logs[procs[spec.proc % len(procs)]]
            if log.entries:
                index = _scaled(spec.position, len(log.entries))
                entry = log.entries[index]
                log.entries[index] = CSEntry(
                    distance=entry.distance,
                    size=max(1, entry.size + spec.delta))
            return damaged
        if spec.kind == "shift_interrupt":
            procs = sorted(damaged.interrupt_logs)
            log = damaged.interrupt_logs[procs[spec.proc % len(procs)]]
            if log.entries:
                index = _scaled(spec.position, len(log.entries))
                entry = log.entries[index]
                log.entries[index] = dataclasses.replace(
                    entry, chunk_id=max(1, entry.chunk_id + spec.delta))
            return damaged
        if spec.kind == "drop_dma":
            log = damaged.dma_log
            if log.entries:
                index = _scaled(spec.position, len(log.entries))
                del log.entries[index]
                if log.commit_slots:
                    del log.commit_slots[
                        min(index, len(log.commit_slots) - 1)]
            return damaged
        if spec.kind == "shift_dma_slot":
            log = damaged.dma_log
            if log.commit_slots:
                index = _scaled(spec.position, len(log.commit_slots))
                log.commit_slots[index] = max(
                    0, log.commit_slots[index] + spec.delta)
            return damaged
        raise ConfigurationError(f"unknown log fault {spec.kind!r}")


@dataclass(frozen=True)
class FaultyJobFn:
    """A picklable job function that deterministically misbehaves.

    Wraps a real ``job_fn`` for the runner pool and, based on a hash of
    ``(seed, spec.content_hash())``, injects one of: a worker *crash*
    (``os._exit`` in a pooled worker, so the pool sees a vanished
    process; a plain ``RuntimeError`` inline), a *hang* longer than the
    job timeout, or a *slow-down* shorter than it.  ``state_dir``
    marker files make the misbehavior strike only on the first attempt
    of each spec -- the retried attempt succeeds, which is exactly the
    scenario the runner's retry/backoff hardening exists for.
    """

    job_fn: object
    seed: int
    state_dir: str
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    hang_seconds: float = 30.0
    slow_seconds: float = 0.05

    def _draw(self, spec) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{spec.content_hash()}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64

    def _first_attempt(self, spec) -> bool:
        marker = os.path.join(
            self.state_dir, f"attempted-{spec.content_hash()[:32]}")
        if os.path.exists(marker):
            return False
        os.makedirs(self.state_dir, exist_ok=True)
        with open(marker, "w") as handle:
            handle.write("1")
        return True

    def __call__(self, spec, cache=None):
        draw = self._draw(spec)
        if draw < self.crash_rate and self._first_attempt(spec):
            if multiprocessing.parent_process() is not None:
                os._exit(17)  # vanish like a SIGKILLed worker
            raise RuntimeError("injected worker crash (inline mode)")
        draw = (draw - self.crash_rate) % 1.0
        if draw < self.hang_rate and self._first_attempt(spec):
            time.sleep(self.hang_seconds)
        elif draw < self.hang_rate + self.slow_rate:
            time.sleep(self.slow_seconds)
        if cache is None:
            return self.job_fn(spec)
        return self.job_fn(spec, cache=cache)
