"""Chaos campaigns: record, inject, replay, classify -- in parallel.

A campaign takes one recorded execution, expands a seeded
:class:`~repro.faults.plan.FaultPlan` into per-fault jobs, and pushes
them through the experiment runner's pool.  Each job reproduces the
full life of one fault and classifies the outcome:

``harmless``
    The fault landed somewhere inert (an ignored byte, a shift past
    the end of a log): strict load and replay still verified, and the
    replayed final memory matches the baseline exactly.
``detected``
    A typed :class:`~repro.errors.ReproError` surfaced the fault --
    at the integrity layer (CRC/framing) or during replay
    (divergence/deadlock) -- and salvage could not verify anything.
``recovered``
    The fault was detected *and* salvage replay still reproduced part
    of the execution, with a :class:`~repro.faults.salvage.SalvageReport`
    quantifying exactly how much.
``silent-divergence``
    The failure mode the whole fault model exists to rule out: replay
    claimed success but produced different final memory than the
    baseline.  One of these fails the campaign (exit 1 in the CLI,
    ``invariant_ok = False`` here).

Every fault must land in the first three buckets -- that is the
resilience invariant the chaos tests assert.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass, field

from repro.core.delorean import DeLoreanSystem
from repro.core.serialization import load_recording, save_recording
from repro.errors import IntegrityError, ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.salvage import salvage_from_blob, salvage_replay
from repro.workloads import COMMERCIAL_APPS, commercial_program, \
    splash2_program

#: Outcome buckets, in decreasing order of comfort.
OUTCOMES = ("harmless", "detected", "recovered", "silent-divergence")


def _memory_sha(final_memory: dict[int, int]) -> str:
    canonical = json.dumps(sorted(final_memory.items()))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class ChaosSpec:
    """One fault-injection job for the runner pool.

    Duck-types the runner's spec interface (``content_hash`` /
    ``dependencies`` / ``label``).  Carries the intact baseline blob
    (base64, so the spec stays JSON-friendly) plus the oracle values a
    classification must never silently contradict.
    """

    blob_b64: str
    fault: FaultSpec
    baseline_commits: int
    baseline_memory_sha: str

    def content_hash(self) -> str:
        blob_sha = hashlib.sha256(self.blob_b64.encode()).hexdigest()
        canonical = json.dumps({
            "kind": "chaos",
            "blob": blob_sha,
            "fault": self.fault.as_dict(),
            "baseline_commits": self.baseline_commits,
            "baseline_memory_sha": self.baseline_memory_sha,
        }, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def dependencies(self) -> tuple:
        return ()

    def label(self) -> str:
        return f"chaos:{self.fault.label()}"


def _classify_replayable(recording, spec: ChaosSpec,
                         damage=None) -> dict:
    """Replay a loaded (possibly silently damaged) recording and
    classify: verified+baseline-equal is harmless, anything else goes
    through salvage."""
    from repro.machine.system import replay_execution

    try:
        result = replay_execution(recording)
    except ReproError as error:
        report = salvage_replay(recording, damage=damage)
        return {
            "outcome": ("recovered" if report.recovered
                        else "detected"),
            "detected_by": type(error).__name__,
            "detail": str(error),
            "salvage": report.as_dict(),
        }
    if result.determinism.matches:
        memory_sha = _memory_sha(result.final_memory)
        commits = len(recording.fingerprints)
        if (memory_sha == spec.baseline_memory_sha
                and commits == spec.baseline_commits):
            if damage:
                # Tolerant load flagged damage, yet the remainder
                # replayed and verified end-to-end: detected + fully
                # recovered.
                report = salvage_replay(recording, damage=damage)
                return {
                    "outcome": "recovered",
                    "detected_by": "SectionDamage",
                    "detail": damage[0].describe(),
                    "salvage": report.as_dict(),
                }
            return {"outcome": "harmless", "detected_by": None,
                    "detail": "replay verified, baseline reproduced",
                    "salvage": None}
        return {
            "outcome": "silent-divergence",
            "detected_by": None,
            "detail": (f"replay verified against a corrupted oracle: "
                       f"memory {memory_sha[:12]} vs baseline "
                       f"{spec.baseline_memory_sha[:12]}, "
                       f"{commits} vs {spec.baseline_commits} commits"),
            "salvage": None,
        }
    report = salvage_replay(recording, damage=damage)
    return {
        "outcome": "recovered" if report.recovered else "detected",
        "detected_by": "DeterminismReport",
        "detail": result.determinism.summary(),
        "salvage": report.as_dict(),
    }


def execute_chaos_spec(spec: ChaosSpec, cache=None) -> dict:
    """Run one fault end to end; returns its classification artifact.

    Module-level and cache-signature-compatible so the runner pool can
    pickle it to workers.
    """
    injector = FaultInjector()
    blob = base64.b64decode(spec.blob_b64)
    fault = spec.fault

    if fault.layer == "blob":
        damaged_blob = injector.inject_blob(blob, fault)
        if damaged_blob == blob:
            result = {"outcome": "harmless", "detected_by": None,
                      "detail": "fault produced an identical blob",
                      "salvage": None}
            return _artifact(spec, result)
        try:
            recording = load_recording(damaged_blob)
        except IntegrityError as error:
            try:
                _, report = salvage_from_blob(damaged_blob)
            except ReproError as salvage_error:
                result = {
                    "outcome": "detected",
                    "detected_by": type(error).__name__,
                    "detail": (f"{error}; salvage also failed: "
                               f"{salvage_error}"),
                    "salvage": None,
                }
            else:
                result = {
                    "outcome": ("recovered" if report.recovered
                                else "detected"),
                    "detected_by": type(error).__name__,
                    "detail": str(error),
                    "salvage": report.as_dict(),
                }
            return _artifact(spec, result)
        result = _classify_replayable(recording, spec)
        return _artifact(spec, result)

    if fault.layer == "log":
        recording = load_recording(blob)
        damaged = injector.inject_recording(recording, fault)
        result = _classify_replayable(damaged, spec)
        return _artifact(spec, result)

    raise ReproError(f"campaign cannot run {fault.layer!r} faults "
                     f"as jobs (runner faults wrap the job function)")


def _artifact(spec: ChaosSpec, result: dict) -> dict:
    return {
        "schema": 1,
        "kind": "chaos",
        "spec_hash": spec.content_hash(),
        "fault": spec.fault.as_dict(),
        "fault_label": spec.fault.label(),
        **result,
    }


@dataclass
class CampaignReport:
    """Aggregate verdict of one chaos campaign."""

    app: str
    mode: str
    plan_seed: int
    total_commits: int
    results: list[dict] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    def count(self, outcome: str) -> int:
        """Results in one outcome bucket."""
        return sum(1 for r in self.results
                   if r["outcome"] == outcome)

    @property
    def invariant_ok(self) -> bool:
        """True when no fault produced a silent wrong result and no
        job failed outright."""
        return (self.count("silent-divergence") == 0
                and not self.failures)

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "mode": self.mode,
            "plan_seed": self.plan_seed,
            "total_commits": self.total_commits,
            "faults": len(self.results),
            "outcomes": {outcome: self.count(outcome)
                         for outcome in OUTCOMES},
            "job_failures": list(self.failures),
            "invariant_ok": self.invariant_ok,
        }

    def summary(self) -> str:
        counts = ", ".join(f"{self.count(o)} {o}" for o in OUTCOMES
                           if self.count(o))
        verdict = ("invariant holds" if self.invariant_ok
                   else "INVARIANT VIOLATED")
        return (f"chaos[{self.app}/{self.mode}] "
                f"{len(self.results)} faults: {counts or 'none'} "
                f"-- {verdict}")

    def write_jsonl(self, path: str) -> None:
        """One line per fault, then the campaign summary line."""
        with open(path, "w") as handle:
            for result in self.results:
                handle.write(json.dumps(result, sort_keys=True) + "\n")
            handle.write(json.dumps(
                {"kind": "campaign-summary", **self.as_dict()},
                sort_keys=True) + "\n")


def record_baseline(app: str, mode, scale: float = 1.0,
                    seed: int = 1, checkpoint_every: int = 32,
                    tracer=None):
    """Record the campaign's baseline execution (with interval
    checkpoints, so salvage has resync points) and return
    ``(recording, v2 blob)``."""
    if app in COMMERCIAL_APPS:
        program = commercial_program(app, scale=scale, seed=seed)
    else:
        program = splash2_program(app, scale=scale, seed=seed)
    system = DeLoreanSystem(mode=mode)
    recording = system.record(program,
                              checkpoint_every=checkpoint_every,
                              tracer=tracer)
    return recording, save_recording(recording)


def build_specs(blob: bytes, recording,
                plan: FaultPlan) -> list[ChaosSpec]:
    """Expand a fault plan into runner jobs against one baseline."""
    blob_b64 = base64.b64encode(blob).decode("ascii")
    baseline_sha = _memory_sha(recording.final_memory)
    return [ChaosSpec(
        blob_b64=blob_b64,
        fault=fault,
        baseline_commits=len(recording.fingerprints),
        baseline_memory_sha=baseline_sha,
    ) for fault in plan if fault.layer in ("blob", "log")]


def run_campaign(app: str, mode, *, scale: float = 1.0,
                 seed: int = 1, plan_seed: int = 7,
                 fault_count: int = 12, checkpoint_every: int = 32,
                 runner=None, tracer=None) -> CampaignReport:
    """Record once, inject ``fault_count`` seeded faults, classify
    each through ``runner`` (a :class:`~repro.runner.pool.Runner`;
    default: inline, uncached)."""
    from repro.runner.pool import Runner

    recording, blob = record_baseline(
        app, mode, scale=scale, seed=seed,
        checkpoint_every=checkpoint_every, tracer=tracer)
    plan = FaultPlan.generate(
        plan_seed, fault_count,
        num_processors=recording.machine_config.num_processors)
    specs = build_specs(blob, recording, plan)
    if runner is None:
        runner = Runner(jobs=1, cache=False,
                        job_fn=execute_chaos_spec)
    report = CampaignReport(
        app=app,
        mode=getattr(mode, "value", str(mode)),
        plan_seed=plan_seed,
        total_commits=len(recording.fingerprints))
    for outcome in runner.run(specs):
        if outcome.ok:
            report.results.append(outcome.artifact)
        else:
            report.failures.append(outcome.failure.summary())
    if tracer is not None:
        for bucket in OUTCOMES:
            tracer.metrics.counter(
                f"chaos_{bucket.replace('-', '_')}").inc(
                report.count(bucket))
    return report
