"""Best-effort salvage replay of damaged recordings.

The strict replay path treats any inconsistency as fatal -- correct
for a determinism checker, useless for an operator holding a
half-corrupted ``.dlrn`` from a dead disk.  Salvage replay inverts the
priorities: replay as much of the recorded execution as the surviving
logs support, quantify exactly which committed chunks were reproduced
bit-for-bit, and report the rest as lost.

The state machine (documented in ``docs/INTERNALS.md``):

1. **Replay** from the current resync point (GCC 0, or an interval
   checkpoint from Appendix B).
2. On success, credit every remaining commit and stop.
3. On divergence / deadlock / integrity error -- or a fingerprint
   mismatch in the determinism report -- credit the *verified prefix*
   (commits reproduced exactly before the first bad one) and record a
   detected fault.
4. **Resync**: pick the earliest interval checkpoint strictly past the
   first bad commit and go to 1.  Without such a checkpoint (or
   without forward progress), stop.

Coverage is honest by construction: a commit is counted only if its
fingerprint matched the recording, so a salvage report can never claim
recovery of state it did not actually reproduce (the chaos invariant's
"never a silent wrong result").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.recorder import Recording
from repro.core.serialization import (
    SectionDamage,
    load_recording_tolerant,
)
from repro.errors import ReproError
from repro.telemetry.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True)
class SalvageSegment:
    """One contiguous run of verified global commits [start, end)."""

    start: int
    end: int

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class SalvageReport:
    """What a salvage replay managed to reproduce.

    ``first_bad_gcc`` maps each processor to the global commit count of
    its first unverified commit (None: everything that processor
    committed was reproduced).  ``faults_detected`` lists every typed
    error and damaged section encountered; ``recovered`` is True when
    at least one commit was verified despite detected faults.
    """

    total_commits: int
    verified_commits: int = 0
    segments: list[SalvageSegment] = field(default_factory=list)
    first_bad_gcc: dict[int, int | None] = field(default_factory=dict)
    faults_detected: list[str] = field(default_factory=list)
    damage: list[SectionDamage] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Fraction of recorded commits reproduced exactly."""
        if self.total_commits == 0:
            return 1.0 if not self.faults_detected else 0.0
        return self.verified_commits / self.total_commits

    @property
    def clean(self) -> bool:
        """No faults at all: the recording replayed perfectly."""
        return (not self.faults_detected and not self.damage
                and self.verified_commits == self.total_commits)

    @property
    def recovered(self) -> bool:
        """Faults were present, yet some execution was reproduced."""
        return (bool(self.faults_detected or self.damage)
                and self.verified_commits > 0)

    def as_dict(self) -> dict:
        """JSON-friendly form for campaign reports."""
        return {
            "total_commits": self.total_commits,
            "verified_commits": self.verified_commits,
            "coverage": round(self.coverage, 6),
            "segments": [[s.start, s.end] for s in self.segments],
            "first_bad_gcc": {str(proc): gcc for proc, gcc
                              in sorted(self.first_bad_gcc.items())},
            "faults_detected": list(self.faults_detected),
            "damage": [d.describe() for d in self.damage],
            "clean": self.clean,
            "recovered": self.recovered,
        }

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.clean:
            return (f"clean: all {self.total_commits} commits "
                    f"reproduced")
        return (f"salvaged {self.verified_commits}/{self.total_commits} "
                f"commits ({self.coverage:.1%}) across "
                f"{len(self.segments)} segment(s); "
                f"{len(self.faults_detected)} fault(s) detected, "
                f"{len(self.damage)} damaged section(s)")


def _commit_proc(fingerprint: tuple, dma_proc_id: int) -> int:
    owner = fingerprint[0]
    return dma_proc_id if owner == "dma" else owner


def _matched_prefix(expected: list[tuple],
                    actual: list[tuple]) -> int:
    count = 0
    for recorded, replayed in zip(expected, actual):
        if recorded != replayed:
            break
        count += 1
    return count


def salvage_replay(recording: Recording,
                   damage: list[SectionDamage] | None = None,
                   max_events: int | None = None,
                   tracer: Tracer | None = None) -> SalvageReport:
    """Replay a (possibly damaged) recording as far as it will go.

    ``damage`` carries what the tolerant loader already knows is wrong
    (it counts as detected faults even if replay then sails through the
    substituted empty logs -- it cannot, but the report must not hide
    the damage either way).
    """
    # Local import: machine.system imports core.* and telemetry; going
    # the other way at module load would be a cycle.
    from repro.machine.system import replay_execution

    # `or` would discard an empty EventTracer (len() == 0 is falsy).
    tracer = NULL_TRACER if tracer is None else tracer
    total = len(recording.fingerprints)
    report = SalvageReport(total_commits=total,
                           damage=list(damage or []))
    verified: set[int] = set()
    store = recording.interval_checkpoints
    checkpoint = None
    base = 0

    while True:
        first_bad: int | None = None
        try:
            result = replay_execution(
                recording, start_checkpoint=checkpoint,
                max_events=max_events, tracer=tracer)
            determinism = result.determinism
            if determinism.matches:
                verified.update(range(base, total))
                if base < total:
                    report.segments.append(SalvageSegment(base, total))
                break
            report.faults_detected.append(
                f"replay from GCC {base}: {determinism.summary()}")
            if determinism.first_mismatch is None:
                # Per-processor (stratified) comparison: there is no
                # meaningful global prefix to credit.
                break
            first_bad = base + determinism.first_mismatch
        except ReproError as error:
            report.faults_detected.append(
                f"replay from GCC {base}: "
                f"{type(error).__name__}: {error}")
            context = getattr(error, "context", None)
            prefix = 0
            if context is not None and context.fingerprints:
                prefix = _matched_prefix(
                    recording.fingerprints[base:],
                    list(context.fingerprints))
            first_bad = base + prefix
        if first_bad > base:
            verified.update(range(base, first_bad))
            report.segments.append(SalvageSegment(base, first_bad))
        # Resync: earliest checkpoint strictly past the bad commit.
        checkpoints = getattr(store, "checkpoints", None) or []
        candidates = [c for c in checkpoints
                      if c.commit_index > max(first_bad, base)]
        if not candidates:
            break
        checkpoint = candidates[0]
        base = checkpoint.commit_index

    report.verified_commits = len(verified)
    dma_proc = recording.machine_config.dma_proc_id
    first_bad_gcc: dict[int, int | None] = {
        proc: None for proc in range(
            recording.machine_config.num_processors)}
    for index, fingerprint in enumerate(recording.fingerprints):
        if index in verified:
            continue
        proc = _commit_proc(fingerprint, dma_proc)
        if first_bad_gcc.get(proc) is None:
            first_bad_gcc[proc] = index
    report.first_bad_gcc = first_bad_gcc

    metrics = tracer.metrics
    metrics.counter("salvage_faults_detected").inc(
        len(report.faults_detected) + len(report.damage))
    metrics.counter("salvage_commits_verified").inc(
        report.verified_commits)
    metrics.counter("salvage_segments_replayed").inc(
        len(report.segments))
    return report


def salvage_from_blob(blob: bytes,
                      max_events: int | None = None,
                      tracer: Tracer | None = None,
                      ) -> tuple[Recording, SalvageReport]:
    """Tolerant-load a blob and salvage-replay whatever survived.

    Raises :class:`~repro.errors.SalvageError` (via the tolerant
    loader) only when nothing is recoverable at all -- a destroyed
    header or trailer.
    """
    recording, damage = load_recording_tolerant(blob)
    return recording, salvage_replay(
        recording, damage=damage, max_events=max_events, tracer=tracer)


__all__ = [
    "SalvageReport",
    "SalvageSegment",
    "salvage_from_blob",
    "salvage_replay",
]
