"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A machine, mode, or workload configuration is invalid."""


class LogFormatError(ReproError):
    """A log could not be encoded or decoded with the configured format."""


class ReplayDivergenceError(ReproError):
    """Replay diverged from the recorded execution.

    This is the fatal condition a deterministic replayer must never hit;
    it is raised (rather than silently tolerated) so tests can assert
    determinism and users can detect corrupted or mismatched logs.
    """


class ExecutionError(ReproError):
    """A simulated program performed an illegal operation."""


class DeadlockError(ExecutionError):
    """The simulated machine can make no further progress."""
