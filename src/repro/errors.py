"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A machine, mode, or workload configuration is invalid."""


class IntegrityError(ReproError):
    """A recording failed an integrity check before replay.

    This is the detection layer of the fault model (see
    :mod:`repro.faults`): structural damage -- truncation, bad framing,
    checksum mismatches -- must surface here, as a typed error at load
    time, rather than later as a confusing mid-replay divergence or (the
    existential risk) a silently wrong replay.
    """


class LogFormatError(IntegrityError):
    """A log could not be encoded or decoded with the configured format."""


class ChecksumError(IntegrityError):
    """A DLRN v2 section's CRC32 did not match its payload.

    Carries enough structure for the salvage scanner to report *which*
    section is damaged: ``section_tag`` and ``proc`` are None when the
    failure is not attributable to a single section (e.g. a damaged
    file header).
    """

    def __init__(self, message: str, *, section_tag: int | None = None,
                 proc: int | None = None) -> None:
        super().__init__(message)
        self.section_tag = section_tag
        self.proc = proc


class SalvageError(IntegrityError):
    """Best-effort salvage could not recover anything from a damaged
    recording (e.g. the trailer holding the program is itself gone)."""


class ReplayDivergenceError(ReproError):
    """Replay diverged from the recorded execution.

    This is the fatal condition a deterministic replayer must never hit;
    it is raised (rather than silently tolerated) so tests can assert
    determinism and users can detect corrupted or mismatched logs.

    Beyond the message, the error carries structured fields for the
    forensics layer (:mod:`repro.telemetry.forensics`): the diverging
    processor, the chunk (or log cursor) index, and the expected vs.
    actual commit record where known.  ``str(e)`` is exactly the
    message, unchanged from the message-only days.  ``context`` is
    attached by the replay machine when the error crosses its run loop
    (a :class:`~repro.telemetry.forensics.DivergenceContext` snapshot
    of the partial replay).
    """

    def __init__(self, message: str, *, proc_id: int | None = None,
                 chunk_index: int | None = None, expected=None,
                 actual=None) -> None:
        super().__init__(message)
        self.proc_id = proc_id
        self.chunk_index = chunk_index
        self.expected = expected
        self.actual = actual
        self.context = None


class ServeError(ReproError):
    """A serve-layer client request failed.

    Raised by :class:`~repro.serve.client.ServeClient` when the server
    answers with an error status (or cannot be reached).  ``status`` is
    the HTTP status code (0 when no response arrived);
    ``retry_after`` carries the server's backoff hint on a 429 shed.
    """

    def __init__(self, message: str, *, status: int = 0,
                 retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ExecutionError(ReproError):
    """A simulated program performed an illegal operation."""


class DeadlockError(ExecutionError):
    """The simulated machine can make no further progress."""


class StallError(ExecutionError):
    """A supervised session stopped making forward progress.

    Raised by the :mod:`repro.guard` watchdog instead of letting a
    livelocked or starved session hang forever.  ``classification`` is
    the watchdog's verdict (``gcc-stagnation``, ``token-starvation``,
    ``squash-livelock``, ``livelock``, ``replay-stall``); ``details``
    is a JSON-friendly telemetry snapshot taken at detection time
    (cycle, events, committed counts, arbiter state, squash history).
    """

    def __init__(self, message: str, *, classification: str,
                 details: dict | None = None) -> None:
        super().__init__(message)
        self.classification = classification
        self.details = dict(details or {})


class BudgetExceeded(ReproError):
    """A supervised session ran past an enforceable resource budget.

    Raised only at chunk boundaries (never mid-commit) so the machine
    is always left in a quiescent, checkpointable state.  ``budget``
    names the exhausted budget (``deadline``, ``log-bytes``,
    ``event-queue``, ``squash-rate``); ``limit`` is the configured
    ceiling and ``observed`` the measured value that crossed it.
    """

    def __init__(self, message: str, *, budget: str,
                 limit: float, observed: float,
                 proc: int | None = None) -> None:
        super().__init__(message)
        self.budget = budget
        self.limit = limit
        self.observed = observed
        self.proc = proc
