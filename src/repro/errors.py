"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A machine, mode, or workload configuration is invalid."""


class LogFormatError(ReproError):
    """A log could not be encoded or decoded with the configured format."""


class ReplayDivergenceError(ReproError):
    """Replay diverged from the recorded execution.

    This is the fatal condition a deterministic replayer must never hit;
    it is raised (rather than silently tolerated) so tests can assert
    determinism and users can detect corrupted or mismatched logs.

    Beyond the message, the error carries structured fields for the
    forensics layer (:mod:`repro.telemetry.forensics`): the diverging
    processor, the chunk (or log cursor) index, and the expected vs.
    actual commit record where known.  ``str(e)`` is exactly the
    message, unchanged from the message-only days.  ``context`` is
    attached by the replay machine when the error crosses its run loop
    (a :class:`~repro.telemetry.forensics.DivergenceContext` snapshot
    of the partial replay).
    """

    def __init__(self, message: str, *, proc_id: int | None = None,
                 chunk_index: int | None = None, expected=None,
                 actual=None) -> None:
        super().__init__(message)
        self.proc_id = proc_id
        self.chunk_index = chunk_index
        self.expected = expected
        self.actual = actual
        self.context = None


class ExecutionError(ReproError):
    """A simulated program performed an illegal operation."""


class DeadlockError(ExecutionError):
    """The simulated machine can make no further progress."""
