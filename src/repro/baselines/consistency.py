"""Conventional (non-chunked) execution under SC, PC/TSO and RC timing.

This executor runs the same concurrent programs as the chunk machine,
but the way real FDR/RTR/Strata hosts do: every memory access becomes
globally visible immediately, and the interleaving is decided by
per-processor clocks (the processor with the earliest next-op time
executes next).  Two things come out of a run:

* **Timing** -- the cycle count under a consistency model.  The models
  differ only in how much of each miss latency the pipeline exposes
  (:class:`~repro.machine.timing.TimingModel` exposure factors):
  RC hides almost everything (speculation across fences + store
  buffering), aggressive SC exposes most of a load miss despite
  speculative loads and store prefetching, and PC/TSO -- the paper's
  stand-in estimate for Advanced RTR -- sits in between.  These produce
  the RC and SC reference bars of Figure 10.
* **A sequentially-consistent access trace** -- the ordered list of
  memory accesses (with per-processor instruction counts) that the
  conventional recorders (FDR/RTR/Strata) consume.

The executor shares the line-granularity cache model with the chunk
machine so cycle counts are comparable across Figure 10's bars.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field

from repro.chunks.cache import CacheConfig, SharedL2Filter, SpeculativeCache
from repro.errors import DeadlockError
from repro.machine.events import IODevice, build_handler_ops
from repro.machine.memory import MainMemory
from repro.machine.program import (
    BARRIER_SPIN_COST,
    LOCK_SPIN_COST,
    WORD_MASK,
    OpKind,
    Program,
    ThreadState,
    compute_mix,
)
from repro.machine.timing import MachineConfig

_STAGE_START = 0
_STAGE_BARRIER_WAIT = 1


class ConsistencyModel(enum.Enum):
    """Memory consistency models with distinct timing."""

    SC = "sc"
    PC = "pc"   # PC/TSO estimate (Advanced RTR, Section 6.2)
    RC = "rc"

    def exposures(self, timing) -> tuple[float, float]:
        """(load_exposure, store_exposure) for this model."""
        if self is ConsistencyModel.SC:
            return timing.sc_load_exposure, timing.sc_store_exposure
        if self is ConsistencyModel.PC:
            return timing.pc_load_exposure, timing.pc_store_exposure
        return timing.rc_load_exposure, timing.rc_store_exposure


@dataclass(frozen=True)
class AccessRecord:
    """One memory access in the global (SC) order.

    ``instruction`` is the per-processor dynamic instruction count at
    the access (what FDR/RTR put in their log entries); ``operation``
    is the per-processor memory-operation count (what Strata counts).
    """

    index: int
    processor: int
    line: int
    is_write: bool
    instruction: int
    operation: int
    # Word address and value moved (used by the BugNet baseline, which
    # logs load values rather than orderings).
    address: int = 0
    value: int = 0


@dataclass
class InterleavedResult:
    """Outcome of one interleaved execution."""

    model: ConsistencyModel
    cycles: float
    total_instructions: int
    per_proc_instructions: dict[int, int]
    trace: list[AccessRecord]
    final_memory: dict[int, int]
    spin_instructions: int = 0

    @property
    def ipc(self) -> float:
        """Whole-machine committed instructions per cycle."""
        return (self.total_instructions / self.cycles
                if self.cycles > 0 else 0.0)


class InterleavedExecutor:
    """Runs a Program under a conventional consistency model."""

    def __init__(
        self,
        program: Program,
        machine_config: MachineConfig | None = None,
        model: ConsistencyModel = ConsistencyModel.SC,
        collect_trace: bool = True,
    ) -> None:
        self.program = program
        self.config = machine_config or MachineConfig()
        self.model = model
        self.collect_trace = collect_trace
        self.memory = MainMemory(program.initial_memory)
        self.io_device = IODevice(program.io_seed)
        shared_l2 = SharedL2Filter(self.config.l2_lines)
        cache_config = CacheConfig(self.config.l1_sets,
                                   self.config.l1_ways)
        self._caches = [SpeculativeCache(cache_config, shared_l2)
                        for _ in range(program.num_threads)]

    def run(self, max_steps: int | None = None) -> InterleavedResult:
        """Execute to completion; returns timing and the access trace."""
        program = self.program
        timing = self.config.timing
        load_exposure, store_exposure = self.model.exposures(timing)
        states = [ThreadState(thread_id=index, finished=not ops)
                  for index, ops in enumerate(program.threads)]
        clocks = [0.0] * program.num_threads
        mem_ops = [0] * program.num_threads
        trace: list[AccessRecord] = []
        spin_instructions = 0
        # External events: interrupts are delivered when the target
        # processor's clock passes the event time; DMA bursts apply
        # when the global minimum clock passes theirs.
        interrupts = sorted(program.interrupts, key=lambda e: e.time)
        interrupt_cursor = {p: 0 for p in range(program.num_threads)}
        by_proc: dict[int, list] = {p: [] for p in range(
            program.num_threads)}
        for event in interrupts:
            if event.processor < program.num_threads:
                by_proc[event.processor].append(event)
        dma = sorted(program.dma_transfers, key=lambda t: t.time)
        dma_cursor = 0

        heap = [(0.0, index) for index in range(program.num_threads)
                if not states[index].finished]
        heapq.heapify(heap)
        if max_steps is None:
            max_steps = 400 * max(1, program.total_static_ops()) + 100_000
        steps = 0

        def charge_read(proc: int, line: int) -> float:
            level = self._caches[proc].access(line)
            if level == "l2":
                return timing.l2_hit_cycles * load_exposure
            if level == "memory":
                return timing.memory_cycles * load_exposure
            return 0.0

        def charge_write(proc: int, line: int) -> float:
            level = self._caches[proc].access(line)
            if level == "l2":
                return timing.l2_hit_cycles * store_exposure
            if level == "memory":
                return timing.memory_cycles * store_exposure
            return 0.0

        def record(proc: int, line: int, is_write: bool,
                   address: int = 0, value: int = 0) -> None:
            mem_ops[proc] += 1
            if self.collect_trace:
                trace.append(AccessRecord(
                    index=len(trace),
                    processor=proc,
                    line=line,
                    is_write=is_write,
                    instruction=states[proc].retired,
                    operation=mem_ops[proc],
                    address=address,
                    value=value,
                ))

        while heap:
            steps += 1
            if steps > max_steps:
                raise DeadlockError(
                    f"interleaved execution exceeded {max_steps} steps "
                    f"(likely a deadlocked spin)")
            clock, proc = heapq.heappop(heap)
            state = states[proc]
            # Deliver any due DMA (globally ordered at the minimum
            # clock, which this pop is).
            while dma_cursor < len(dma) and dma[dma_cursor].time <= clock:
                self.memory.apply(dma[dma_cursor].writes)
                dma_cursor += 1
            # Deliver due interrupts for this processor.
            queue = by_proc[proc]
            cursor = interrupt_cursor[proc]
            if (cursor < len(queue) and queue[cursor].time <= clock
                    and not state.in_handler):
                event = queue[cursor]
                interrupt_cursor[proc] = cursor + 1
                state.enter_handler(build_handler_ops(
                    event.vector, event.payload, event.handler_ops))
            op = self._current_op(state)
            if op is None:
                continue  # thread finished
            cost, spin = self._step(proc, state, op, charge_read,
                                    charge_write, record, timing)
            spin_instructions += spin
            clocks[proc] = clock + cost
            heapq.heappush(heap, (clocks[proc], proc))
        total = sum(s.retired for s in states)
        return InterleavedResult(
            model=self.model,
            cycles=max(clocks) if clocks else 0.0,
            total_instructions=total,
            per_proc_instructions={
                index: states[index].retired
                for index in range(program.num_threads)},
            trace=trace,
            final_memory=self.memory.nonzero_words(),
            spin_instructions=spin_instructions,
        )

    def _current_op(self, state: ThreadState):
        if state.handler_ops is not None:
            if state.handler_index < len(state.handler_ops):
                return state.handler_ops[state.handler_index]
            state.exit_handler()
        if state.op_index >= len(self.program.threads[state.thread_id]):
            state.finished = True
            return None
        return self.program.threads[state.thread_id][state.op_index]

    @staticmethod
    def _advance(state: ThreadState) -> None:
        if state.handler_ops is not None:
            state.handler_index += 1
        else:
            state.op_index += 1

    def _step(self, proc, state, op, charge_read, charge_write, record,
              timing):
        """Execute one op step; returns (cycle cost, spin instructions).

        Unlike the chunk interpreter there is no isolation: every store
        is immediately visible, so spins re-read live memory one
        iteration at a time.
        """
        line_of = self.config.line_of
        kind = op.kind
        base = timing.base_cpi
        if kind is OpKind.COMPUTE or kind is OpKind.TRAP:
            count = (state.compute_remaining
                     if state.compute_remaining else op.count)
            state.accumulator = compute_mix(state.accumulator, count)
            state.retired += count
            state.compute_remaining = 0
            self._advance(state)
            return count * base, 0
        if kind is OpKind.LOAD:
            line = line_of(op.address)
            state.accumulator = self.memory.read(op.address)
            record(proc, line, False, op.address, state.accumulator)
            state.retired += 1
            self._advance(state)
            return base + charge_read(proc, line), 0
        if kind is OpKind.STORE:
            line = line_of(op.address)
            value = op.value if op.value is not None else state.accumulator
            self.memory.write(op.address, value)
            record(proc, line, True, op.address, value)
            state.retired += 1
            self._advance(state)
            return base + charge_write(proc, line), 0
        if kind is OpKind.RMW:
            line = line_of(op.address)
            old = self.memory.read(op.address)
            delta = op.value if op.value is not None else 1
            self.memory.write(op.address, old + delta)
            record(proc, line, True, op.address, old + delta)
            state.accumulator = old
            state.retired += 1
            self._advance(state)
            # An atomic exposes its full round trip under every model.
            return base + charge_read(proc, line), 0
        if kind is OpKind.LOCK:
            line = line_of(op.address)
            value = self.memory.read(op.address)
            cost = LOCK_SPIN_COST * base + charge_read(proc, line)
            state.retired += LOCK_SPIN_COST
            if value == 0:
                self.memory.write(op.address, 1)
                record(proc, line, True, op.address, 1)
                self._advance(state)
                return cost, 0
            record(proc, line, False, op.address, value)
            return cost, LOCK_SPIN_COST
        if kind is OpKind.UNLOCK:
            line = line_of(op.address)
            self.memory.write(op.address, 0)
            record(proc, line, True, op.address, 0)
            state.retired += 1
            self._advance(state)
            return base + charge_write(proc, line), 0
        if kind is OpKind.BARRIER:
            line = line_of(op.address)
            if state.stage == _STAGE_START:
                old = self.memory.read(op.address)
                self.memory.write(op.address, old + 1)
                record(proc, line, True, op.address, old + 1)
                state.barrier_target = (old // op.count + 1) * op.count
                state.stage = _STAGE_BARRIER_WAIT
                state.retired += 1
                return base + charge_read(proc, line), 0
            value = self.memory.read(op.address)
            cost = BARRIER_SPIN_COST * base + charge_read(proc, line)
            state.retired += BARRIER_SPIN_COST
            if value >= state.barrier_target:
                state.stage = _STAGE_START
                state.barrier_target = 0
                self._advance(state)
                return cost, 0
            record(proc, line, False, op.address, value)
            return cost, BARRIER_SPIN_COST
        if kind is OpKind.IO_LOAD:
            state.accumulator = self.io_device.load(op.address) & WORD_MASK
            state.retired += 1
            self._advance(state)
            # Uncached: the full memory round trip is exposed.
            return base + timing.memory_cycles, 0
        if kind is OpKind.IO_STORE:
            self.io_device.store(op.address, state.accumulator)
            state.retired += 1
            self._advance(state)
            return base + timing.memory_cycles, 0
        if kind is OpKind.SPECIAL:
            state.retired += 1
            self._advance(state)
            return base + timing.memory_cycles / 2, 0
        raise ValueError(f"unhandled op kind {kind}")

    # NOTE: loads record into the trace lazily -- see record() call
    # sites above.  Loads that hit a spin loop record as reads so the
    # dependence recorders see the WAR/RAW structure of the spin.
