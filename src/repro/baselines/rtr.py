"""Basic Regulated Transitive Reduction (RTR) [Xu et al., ASPLOS 2006].

RTR improves on FDR's log size with two ideas the DeLorean paper
summarizes (Figure 1(b)):

1. **Regulation** -- judiciously *strengthen* dependences before
   logging them.  A logged ordering ``p:i' -> q:j`` implies every
   ``p:i -> q:j'`` with ``i <= i'`` and ``j' >= j``, so logging a
   slightly stricter source point (the latest instruction ``p`` had
   retired when ``q``'s access occurred, rounded to the regulation
   stride) lets Netzer's reduction eliminate more subsequent
   dependences.
2. **Vector compaction** -- recurring dependences with identical
   (source-delta, destination-delta) shape are folded into a single
   stride-vector entry with a repeat count.

Regulation must never invent an impossible ordering: the strengthened
source point is capped at the source processor's current progress,
which keeps the log *sound* (the same property test as FDR applies)
while making it strictly smaller in entry count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.consistency import AccessRecord
from repro.baselines.fdr import Dependence, FDRRecorder
from repro.compression.bitstream import BitWriter
from repro.compression.lz77 import compressed_size_bits


@dataclass(frozen=True)
class VectorEntry:
    """A compacted run of dependences with a fixed stride shape."""

    src_proc: int
    dst_proc: int
    first_src: int
    first_dst: int
    src_stride: int
    dst_stride: int
    count: int


class RTRRecorder(FDRRecorder):
    """FDR with regulated sources and stride-vector compaction."""

    _STRIDE_BITS = 16
    _COUNT_BITS = 8

    def __init__(self, num_processors: int, regulation_stride: int = 512,
                 log_wars: bool = True) -> None:
        super().__init__(num_processors, log_wars=log_wars)
        if regulation_stride < 1:
            raise ValueError("regulation stride must be >= 1")
        self.regulation_stride = regulation_stride
        self._progress = [0] * num_processors

    def observe(self, access: AccessRecord) -> None:
        """Track per-processor progress, then process as FDR."""
        self._progress[access.processor] = access.instruction
        super().observe(access)

    def _dependence(self, source: tuple[int, int, tuple],
                    dst_proc: int, dst_instr: int) -> None:
        src_proc, src_instr, src_vc = source
        self.raw_dependences += 1
        if self._vc[dst_proc][src_proc] >= src_instr:
            return  # already implied
        # Regulate: move the source point as late as the stride allows,
        # but never beyond what the source processor has retired (an
        # artificial dependence must be physically enforceable).
        stride = self.regulation_stride
        regulated = ((src_instr + stride - 1) // stride) * stride
        regulated = min(regulated, self._progress[src_proc])
        regulated = max(regulated, src_instr)
        self.dependences.append(Dependence(
            src_proc, regulated, dst_proc, dst_instr))
        known = self._vc[dst_proc]
        for index in range(self.num_processors):
            if src_vc[index] > known[index]:
                known[index] = src_vc[index]
        if regulated > known[src_proc]:
            known[src_proc] = regulated

    # -- vector compaction + size accounting -----------------------------

    def compact(self) -> list[VectorEntry]:
        """Fold stride-recurring dependences into vector entries.

        For each (source, destination) processor pair, maximal runs
        whose consecutive entries share the same (source-delta,
        destination-delta) collapse into one entry with a repeat count.
        Every dependence belongs to exactly one entry.
        """
        entries: list[VectorEntry] = []
        open_runs: dict[tuple[int, int], VectorEntry] = {}
        last: dict[tuple[int, int], Dependence] = {}
        max_count = (1 << self._COUNT_BITS) - 1
        for dep in self.dependences:
            key = (dep.src_proc, dep.dst_proc)
            run = open_runs.get(key)
            if run is None:
                open_runs[key] = VectorEntry(
                    dep.src_proc, dep.dst_proc, dep.src_instr,
                    dep.dst_instr, 0, 0, 1)
                last[key] = dep
                continue
            prev = last[key]
            src_stride = dep.src_instr - prev.src_instr
            dst_stride = dep.dst_instr - prev.dst_instr
            if run.count == 1:
                # Upgrade the singleton to a strided pair.
                open_runs[key] = VectorEntry(
                    run.src_proc, run.dst_proc, run.first_src,
                    run.first_dst, src_stride, dst_stride, 2)
            elif (run.count < max_count
                    and src_stride == run.src_stride
                    and dst_stride == run.dst_stride):
                open_runs[key] = VectorEntry(
                    run.src_proc, run.dst_proc, run.first_src,
                    run.first_dst, run.src_stride, run.dst_stride,
                    run.count + 1)
            else:
                entries.append(run)
                open_runs[key] = VectorEntry(
                    dep.src_proc, dep.dst_proc, dep.src_instr,
                    dep.dst_instr, 0, 0, 1)
            last[key] = dep
        entries.extend(open_runs.values())
        return entries

    def encode(self) -> tuple[bytes, int]:
        """Bit stream of compacted vector entries."""
        writer = BitWriter()
        mask = (1 << self._DELTA_BITS) - 1
        stride_mask = (1 << self._STRIDE_BITS) - 1
        for entry in self.compact():
            writer.write(entry.src_proc, self._PROC_BITS)
            writer.write(entry.dst_proc, self._PROC_BITS)
            writer.write(entry.first_src & mask, self._DELTA_BITS)
            writer.write(entry.first_dst & mask, self._DELTA_BITS)
            writer.write(entry.src_stride & stride_mask,
                         self._STRIDE_BITS)
            writer.write(entry.dst_stride & stride_mask,
                         self._STRIDE_BITS)
            writer.write(entry.count, self._COUNT_BITS)
        return writer.to_bytes(), writer.bit_length

    def compressed_size_bits(self) -> int:
        """Compacted log size after LZ77."""
        payload, bits = self.encode()
        return compressed_size_bits(payload, raw_bits=bits)
