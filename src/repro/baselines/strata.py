"""The Strata recorder [Narayanasamy, Pereira & Calder, ASPLOS 2006].

Rather than logging individual dependences, Strata logs *strata*: each
log entry is a vector with one memory-operation counter per processor,
counting the operations each issued since the previous stratum
(Figure 1(c) of the DeLorean paper).  A stratum is logged right before
a processor issues the *second* access of a cross-processor dependence
whose first access lies in the current stratum region -- after that,
the two accesses are separated by a stratum boundary and the
dependence is implied.

``log_wars`` mirrors the paper's option: Strata "can choose to ignore
WAR dependences when building the log", at the cost of multi-pass
replay.  The test suite checks the separation invariant: every
dependence's two accesses end up in different stratum regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.consistency import AccessRecord
from repro.compression.bitstream import BitWriter
from repro.compression.lz77 import compressed_size_bits


@dataclass
class _LineState:
    """Stratum indices of the last accesses to one line."""

    writer: tuple[int, int] | None = None   # (proc, stratum index)
    readers: dict[int, int] = field(default_factory=dict)


class StrataRecorder:
    """Processes an SC access trace into a Strata log."""

    _COUNTER_BITS = 16

    def __init__(self, num_processors: int,
                 log_wars: bool = True) -> None:
        self.num_processors = num_processors
        self.log_wars = log_wars
        self.strata: list[tuple[int, ...]] = []
        self._since_last = [0] * num_processors
        self._lines: dict[int, _LineState] = {}
        self._current_stratum = 0

    def process(self, trace: list[AccessRecord]) -> None:
        """Consume a whole trace in order."""
        for access in trace:
            self.observe(access)

    def observe(self, access: AccessRecord) -> None:
        """Process one access in global order."""
        line = self._lines.setdefault(access.line, _LineState())
        proc = access.processor
        if self._needs_stratum(line, proc, access.is_write):
            self._emit()
        self._since_last[proc] += 1
        if access.is_write:
            line.writer = (proc, self._current_stratum)
            line.readers = {}
        else:
            line.readers[proc] = self._current_stratum
        counter_max = (1 << self._COUNTER_BITS) - 1
        if self._since_last[proc] >= counter_max:
            self._emit()

    def _needs_stratum(self, line: _LineState, proc: int,
                       is_write: bool) -> bool:
        """Would this access be the second reference of a dependence
        whose first reference is in the current stratum region?"""
        current = self._current_stratum
        if line.writer is not None and line.writer[0] != proc \
                and line.writer[1] == current:
            return True  # RAW or WAW with an unseparated source
        if is_write and self.log_wars:
            return any(reader != proc and stratum == current
                       for reader, stratum in line.readers.items())
        return False

    def _emit(self) -> None:
        self.strata.append(tuple(self._since_last))
        self._since_last = [0] * self.num_processors
        self._current_stratum += 1

    def finish(self) -> None:
        """Flush the trailing partial stratum."""
        if any(self._since_last):
            self._emit()

    # -- size accounting -------------------------------------------------

    def encode(self) -> tuple[bytes, int]:
        """Bit stream: one counter vector per stratum."""
        writer = BitWriter()
        for stratum in self.strata:
            for count in stratum:
                writer.write(count, self._COUNTER_BITS)
        return writer.to_bytes(), writer.bit_length

    @property
    def size_bits(self) -> int:
        """Uncompressed Strata log size."""
        return len(self.strata) * self.num_processors * self._COUNTER_BITS

    def compressed_size_bits(self) -> int:
        """Strata log size after LZ77."""
        payload, bits = self.encode()
        return compressed_size_bits(payload, raw_bits=bits)

    def bits_per_proc_per_kiloinst(self, total_instructions: int,
                                   compressed: bool = True) -> float:
        """The shared comparison metric of Figures 6-8."""
        if total_instructions <= 0:
            return 0.0
        bits = (self.compressed_size_bits() if compressed
                else self.size_bits)
        return bits * 1000.0 / total_instructions

    def verify_separation(self, trace: list[AccessRecord]) -> bool:
        """Invariant: every cross-processor dependence has its two
        references in different stratum regions (test-suite check)."""
        boundaries = []
        consumed = [0] * self.num_processors
        position = 0
        for stratum in self.strata:
            position += sum(stratum)
            boundaries.append(position)
        # Assign each access its stratum region by per-proc counting.
        region_of: dict[int, int] = {}
        counts = [0] * self.num_processors
        per_stratum = [list(s) for s in self.strata]
        stratum_index = [0] * self.num_processors
        for access in trace:
            proc = access.processor
            index = stratum_index[proc]
            while (index < len(per_stratum)
                   and per_stratum[index][proc] == 0):
                index += 1
            if index >= len(per_stratum):
                return False  # access not covered by any stratum
            per_stratum[index][proc] -= 1
            stratum_index[proc] = index
            region_of[access.index] = index
        lines: dict[int, _LineState] = {}
        for access in trace:
            line = lines.setdefault(access.line, _LineState())
            proc = access.processor
            region = region_of[access.index]
            if line.writer is not None and line.writer[0] != proc:
                if line.writer[1] >= region:
                    return False
            if access.is_write and self.log_wars:
                for reader, reader_region in line.readers.items():
                    if reader != proc and reader_region >= region:
                        return False
            if access.is_write:
                line.writer = (proc, region)
                line.readers = {}
            else:
                line.readers[proc] = region
        return True
