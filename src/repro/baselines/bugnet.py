"""A BugNet-style load-value recorder (Section 2.1's related work).

BugNet [Narayanasamy, Pokam & Calder, ISCA 2005] replays *user code*
by logging the value of every load whose result could not be inferred
-- in practice, the first load of each memory location per checkpoint
interval, plus any load whose location was written by another thread
or by DMA since the last local access.  It compresses the stream with
a hardware dictionary.

This implementation processes the same SC access traces as the other
baselines but needs load *values*, so it consumes the value-annotated
trace the interleaved executor can produce.  It exists as a reference
point: per-thread value logging is self-contained (no cross-thread
ordering log at all) but pays for it with a much larger log than any
dependence- or chunk-based scheme -- which this module's size
accounting makes measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compression.bitstream import BitWriter
from repro.compression.lz77 import LZ77Codec, compressed_size_bits


@dataclass(frozen=True)
class ValueAccess:
    """One memory access with its value (BugNet's input granularity)."""

    processor: int
    address: int
    value: int
    is_write: bool


@dataclass
class _ThreadView:
    """What one thread can infer without logging."""

    known: dict[int, int] = field(default_factory=dict)


class BugNetRecorder:
    """Logs the load values a BugNet replayer could not infer.

    A load is *inferable* (not logged) when the loading thread itself
    performed the last access to that address -- it can recompute the
    value during replay.  Any other load (first touch, or the location
    was modified externally since) is logged.
    """

    _VALUE_BITS = 64

    def __init__(self, num_processors: int) -> None:
        self.num_processors = num_processors
        self._views = [_ThreadView() for _ in range(num_processors)]
        self.logged_values: dict[int, list[int]] = {
            proc: [] for proc in range(num_processors)}
        self.total_loads = 0
        self.inferred_loads = 0

    def observe(self, access) -> None:
        """Process one access in global order.

        Accepts :class:`ValueAccess` or the interleaved executor's
        value-annotated :class:`~repro.baselines.consistency.AccessRecord`.
        """
        view = self._views[access.processor]
        if access.is_write:
            view.known[access.address] = access.value
            # Other threads can no longer infer this address.
            for other, other_view in enumerate(self._views):
                if other != access.processor:
                    other_view.known.pop(access.address, None)
            return
        self.total_loads += 1
        if view.known.get(access.address) == access.value:
            self.inferred_loads += 1
        else:
            self.logged_values[access.processor].append(access.value)
        view.known[access.address] = access.value

    def process(self, trace) -> None:
        """Consume a whole trace in order."""
        for access in trace:
            self.observe(access)

    def checkpoint(self) -> None:
        """Start a new checkpoint interval: everything must be
        re-logged on first touch (BugNet logs per interval)."""
        for view in self._views:
            view.known.clear()

    @property
    def logged_count(self) -> int:
        """Loads that required a log entry."""
        return sum(len(values) for values in self.logged_values.values())

    def encode(self) -> tuple[bytes, int]:
        """Raw value stream, concatenated per processor."""
        writer = BitWriter()
        for proc in range(self.num_processors):
            for value in self.logged_values[proc]:
                writer.write(value & ((1 << self._VALUE_BITS) - 1),
                             self._VALUE_BITS)
        return writer.to_bytes(), writer.bit_length

    @property
    def size_bits(self) -> int:
        """Uncompressed first-load log size."""
        return self.logged_count * self._VALUE_BITS

    def compressed_size_bits(self) -> int:
        """Size after dictionary-style compression.

        BugNet's hardware dictionary exploits value locality; LZ77 over
        the value stream is the closest software equivalent here.
        """
        payload, bits = self.encode()
        return compressed_size_bits(payload, LZ77Codec(), raw_bits=bits)

    def bits_per_proc_per_kiloinst(self, total_instructions: int,
                                   compressed: bool = True) -> float:
        """The shared comparison metric."""
        if total_instructions <= 0:
            return 0.0
        bits = (self.compressed_size_bits() if compressed
                else self.size_bits)
        return bits * 1000.0 / total_instructions
