"""A store-buffer TSO executor (Advanced RTR's substrate).

Advanced RTR (Section 2.1) records executions on a Total Store Order
machine: loads may bypass older stores sitting in a per-processor FIFO
store buffer, and the recorder must log the value of any load that
violated SC.  The paper only *estimates* Advanced RTR's speed via PC;
this module provides an actual TSO execution so the estimate can be
checked, plus the SC-violation detection Advanced RTR's logging
algorithm needs.

Model: each processor owns a FIFO store buffer of configurable depth.
Stores retire into the buffer immediately (no stall) and drain to
memory ``drain_cycles`` after issue (or earlier if the buffer fills,
which stalls the store).  Loads forward from the youngest matching
buffered store; otherwise they read memory, *bypassing* older buffered
stores.  A bypass becomes an **observable SC violation** -- the case
whose load value Advanced RTR must log -- only when the loaded
location was written by another processor after the oldest buffered
store was issued; unobservable bypasses are SC-equivalent and need no
logging, which is why Advanced RTR's additions are modest.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.chunks.cache import CacheConfig, SharedL2Filter, SpeculativeCache
from repro.errors import ConfigurationError, DeadlockError
from repro.machine.events import IODevice, build_handler_ops
from repro.machine.memory import MainMemory
from repro.machine.program import (
    BARRIER_SPIN_COST,
    LOCK_SPIN_COST,
    WORD_MASK,
    OpKind,
    Program,
    ThreadState,
    compute_mix,
)
from repro.machine.timing import MachineConfig

_STAGE_START = 0
_STAGE_BARRIER_WAIT = 1


@dataclass
class _BufferedStore:
    """One store waiting in a processor's store buffer."""

    address: int
    value: int
    drain_time: float


@dataclass
class TSOResult:
    """Outcome of a TSO execution."""

    cycles: float
    total_instructions: int
    final_memory: dict[int, int]
    sc_violations: int = 0
    violating_load_values: list[int] = field(default_factory=list)
    store_buffer_stalls: int = 0

    @property
    def ipc(self) -> float:
        """Whole-machine committed instructions per cycle."""
        return (self.total_instructions / self.cycles
                if self.cycles > 0 else 0.0)


class TSOExecutor:
    """Runs a Program under TSO with real store buffers."""

    def __init__(
        self,
        program: Program,
        machine_config: MachineConfig | None = None,
        buffer_depth: int = 16,
        drain_cycles: float = 40.0,
    ) -> None:
        if buffer_depth < 1:
            raise ConfigurationError("store buffer needs >= 1 entry")
        self.program = program
        self.config = machine_config or MachineConfig()
        self.buffer_depth = buffer_depth
        self.drain_cycles = drain_cycles
        self.memory = MainMemory(program.initial_memory)
        self.io_device = IODevice(program.io_seed)
        shared_l2 = SharedL2Filter(self.config.l2_lines)
        cache_config = CacheConfig(self.config.l1_sets,
                                   self.config.l1_ways)
        self._caches = [SpeculativeCache(cache_config, shared_l2)
                        for _ in range(program.num_threads)]
        # addr -> (writer proc, memory-visible time): the observability
        # test for SC violations.
        self._last_writer: dict[int, tuple[int, float]] = {}

    def _charge_load(self, proc: int, address: int) -> float:
        """TSO loads expose the PC-class fraction of a miss."""
        timing = self.config.timing
        level = self._caches[proc].access(self.config.line_of(address))
        if level == "l2":
            return timing.l2_hit_cycles * timing.pc_load_exposure
        if level == "memory":
            return timing.memory_cycles * timing.pc_load_exposure
        return 0.0

    def run(self, max_steps: int | None = None) -> TSOResult:
        """Execute to completion under TSO timing and semantics."""
        program = self.program
        timing = self.config.timing
        states = [ThreadState(thread_id=index, finished=not ops)
                  for index, ops in enumerate(program.threads)]
        buffers: list[list[_BufferedStore]] = [
            [] for _ in range(program.num_threads)]
        clocks = [0.0] * program.num_threads
        violations = 0
        violating_values: list[int] = []
        buffer_stalls = 0
        heap = [(0.0, index) for index in range(program.num_threads)
                if not states[index].finished]
        heapq.heapify(heap)
        if max_steps is None:
            max_steps = 400 * max(1, program.total_static_ops()) + 100_000
        steps = 0

        def drain_due(proc: int, now: float) -> None:
            buffer = buffers[proc]
            while buffer and buffer[0].drain_time <= now:
                store = buffer.pop(0)
                self.memory.write(store.address, store.value)
                self._last_writer[store.address] = (proc,
                                                    store.drain_time)

        def drain_all(proc: int, now: float) -> float:
            """Flush the whole buffer (fences/atomics); returns the
            cycle the last store lands."""
            buffer = buffers[proc]
            last = now
            for store in buffer:
                last = max(last, store.drain_time)
                self.memory.write(store.address, store.value)
                self._last_writer[store.address] = (proc, now)
            buffer.clear()
            return last

        def read(proc: int, address: int,
                 now: float) -> tuple[int, bool]:
            """TSO load: forward from the youngest buffered store;
            otherwise read memory, flagging an *observable* SC
            violation when a remote write to this address landed after
            our oldest buffered store was issued."""
            for store in reversed(buffers[proc]):
                if store.address == address:
                    return store.value, False
            value = self.memory.read(address)
            if not buffers[proc]:
                return value, False
            oldest_issue = buffers[proc][0].drain_time - \
                self.drain_cycles
            writer = self._last_writer.get(address)
            violated = (writer is not None and writer[0] != proc
                        and writer[1] > oldest_issue)
            return value, violated

        while heap:
            steps += 1
            if steps > max_steps:
                raise DeadlockError(
                    f"TSO execution exceeded {max_steps} steps")
            clock, proc = heapq.heappop(heap)
            for other in range(program.num_threads):
                drain_due(other, clock)
            state = states[proc]
            op = self._current_op(state)
            if op is None:
                continue
            cost = timing.base_cpi
            kind = op.kind
            if kind is OpKind.COMPUTE or kind is OpKind.TRAP:
                count = (state.compute_remaining
                         if state.compute_remaining else op.count)
                state.accumulator = compute_mix(state.accumulator,
                                                count)
                state.retired += count
                state.compute_remaining = 0
                self._advance(state)
                cost = count * timing.base_cpi
            elif kind is OpKind.LOAD:
                value, violated = read(proc, op.address, clock)
                if violated:
                    violations += 1
                    violating_values.append(value)
                state.accumulator = value
                state.retired += 1
                self._advance(state)
                cost += self._charge_load(proc, op.address)
            elif kind is OpKind.STORE:
                value = (op.value if op.value is not None
                         else state.accumulator)
                if len(buffers[proc]) >= self.buffer_depth:
                    # Full buffer: stall until the head drains.
                    head = buffers[proc][0]
                    stall = max(0.0, head.drain_time - clock)
                    cost += stall
                    buffer_stalls += 1
                    drain_due(proc, head.drain_time)
                # The store installs its line (write-allocate); the
                # buffer hides the latency, so no cycles are charged.
                self._caches[proc].access(
                    self.config.line_of(op.address))
                buffers[proc].append(_BufferedStore(
                    op.address, value & WORD_MASK,
                    clock + self.drain_cycles))
                state.retired += 1
                self._advance(state)
            elif kind in (OpKind.RMW, OpKind.LOCK, OpKind.UNLOCK,
                          OpKind.BARRIER):
                # Atomics and synchronization fence the store buffer.
                landed = drain_all(proc, clock)
                cost += max(0.0, landed - clock)
                cost += self._synchronize(proc, state, op, timing,
                                          clock)
            elif kind is OpKind.IO_LOAD:
                landed = drain_all(proc, clock)
                cost += max(0.0, landed - clock)
                state.accumulator = self.io_device.load(op.address)
                state.retired += 1
                self._advance(state)
                cost += timing.memory_cycles
            elif kind is OpKind.IO_STORE:
                landed = drain_all(proc, clock)
                cost += max(0.0, landed - clock)
                self.io_device.store(op.address, state.accumulator)
                state.retired += 1
                self._advance(state)
                cost += timing.memory_cycles
            elif kind is OpKind.SPECIAL:
                landed = drain_all(proc, clock)
                cost += max(0.0, landed - clock)
                state.retired += 1
                self._advance(state)
                cost += timing.memory_cycles / 2
            else:
                raise ConfigurationError(f"unhandled op kind {kind}")
            clocks[proc] = clock + cost
            heapq.heappush(heap, (clocks[proc], proc))
        # Final drain: nothing may remain buffered at the end.
        final = max(clocks) if clocks else 0.0
        for proc in range(program.num_threads):
            for store in buffers[proc]:
                self.memory.write(store.address, store.value)
                final = max(final, store.drain_time)
        return TSOResult(
            cycles=final,
            total_instructions=sum(s.retired for s in states),
            final_memory=self.memory.nonzero_words(),
            sc_violations=violations,
            violating_load_values=violating_values,
            store_buffer_stalls=buffer_stalls,
        )

    def _synchronize(self, proc, state, op, timing,
                     now: float) -> float:
        """Fenced synchronization ops execute against drained memory."""
        if op.kind is OpKind.RMW:
            old = self.memory.read(op.address)
            delta = op.value if op.value is not None else 1
            self.memory.write(op.address, old + delta)
            self._last_writer[op.address] = (proc, now)
            state.accumulator = old
            state.retired += 1
            self._advance(state)
            return self._charge_load(state.thread_id, op.address)
        if op.kind is OpKind.LOCK:
            value = self.memory.read(op.address)
            state.retired += LOCK_SPIN_COST
            if value == 0:
                self.memory.write(op.address, 1)
                self._last_writer[op.address] = (proc, now)
                self._advance(state)
            return LOCK_SPIN_COST * timing.base_cpi
        if op.kind is OpKind.UNLOCK:
            self.memory.write(op.address, 0)
            self._last_writer[op.address] = (proc, now)
            state.retired += 1
            self._advance(state)
            return timing.base_cpi
        # BARRIER
        if state.stage == _STAGE_START:
            old = self.memory.read(op.address)
            self.memory.write(op.address, old + 1)
            self._last_writer[op.address] = (proc, now)
            state.barrier_target = (old // op.count + 1) * op.count
            state.stage = _STAGE_BARRIER_WAIT
            state.retired += 1
            return timing.base_cpi
        value = self.memory.read(op.address)
        state.retired += BARRIER_SPIN_COST
        if value >= state.barrier_target:
            state.stage = _STAGE_START
            state.barrier_target = 0
            self._advance(state)
        return BARRIER_SPIN_COST * timing.base_cpi

    def _current_op(self, state: ThreadState):
        if state.handler_ops is not None:
            if state.handler_index < len(state.handler_ops):
                return state.handler_ops[state.handler_index]
            state.exit_handler()
        if state.op_index >= len(self.program.threads[state.thread_id]):
            state.finished = True
            return None
        return self.program.threads[state.thread_id][state.op_index]

    @staticmethod
    def _advance(state: ThreadState) -> None:
        if state.handler_ops is not None:
            state.handler_index += 1
        else:
            state.op_index += 1
