"""Baselines DeLorean is compared against.

* :mod:`~repro.baselines.consistency` -- a conventional (non-chunked)
  interleaved executor with SC, PC/TSO and RC timing models.  It
  provides the RC/SC reference bars of Figure 10 and the
  sequentially-consistent access traces the conventional recorders
  consume.
* :mod:`~repro.baselines.fdr` -- the Flight Data Recorder with Netzer's
  transitive reduction.
* :mod:`~repro.baselines.rtr` -- Basic Regulated Transitive Reduction
  (stricter artificial dependences + vector compaction).
* :mod:`~repro.baselines.strata` -- the Strata recorder.
"""

from repro.baselines.consistency import (
    AccessRecord,
    ConsistencyModel,
    InterleavedExecutor,
    InterleavedResult,
)
from repro.baselines.bugnet import BugNetRecorder, ValueAccess
from repro.baselines.fdr import FDRRecorder
from repro.baselines.rtr import RTRRecorder
from repro.baselines.strata import StrataRecorder
from repro.baselines.tso import TSOExecutor, TSOResult

__all__ = [
    "AccessRecord",
    "ConsistencyModel",
    "InterleavedExecutor",
    "InterleavedResult",
    "BugNetRecorder",
    "ValueAccess",
    "FDRRecorder",
    "RTRRecorder",
    "StrataRecorder",
    "TSOExecutor",
    "TSOResult",
]
