"""The Flight Data Recorder (FDR) baseline [Xu et al., ISCA 2003].

FDR observes the coherence traffic of an SC machine and logs the
cross-processor dependences needed for replay, eliminating those that
are transitively implied by already-logged ones (Netzer's Transitive
Reduction, Figure 1(a) of the DeLorean paper).

Mechanics reproduced here:

* per-line last-writer and last-readers, each with the per-processor
  instruction count of the access *and* a snapshot of the source
  processor's vector clock at that point;
* a per-processor vector clock of transitively-known orderings; a
  dependence ``p:i -> q:j`` is logged only when ``VC[q][p] < i``, and
  logging folds the source's snapshot into ``VC[q]``;
* a Memory Races Log whose entries are (source procID, source
  instruction count, destination instruction count), delta-encoded and
  LZ77-compressed like DeLorean's logs so sizes are comparable.

The test suite checks the *reduction soundness* property: the logged
dependence set, closed under program order and transitivity, still
orders every conflicting access pair of the input trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.consistency import AccessRecord
from repro.compression.bitstream import BitWriter
from repro.compression.lz77 import compressed_size_bits


@dataclass(frozen=True)
class Dependence:
    """A logged ordering: src_proc:src_instr happens before
    dst_proc:dst_instr."""

    src_proc: int
    src_instr: int
    dst_proc: int
    dst_instr: int


@dataclass
class _LineState:
    """Last accesses to one cache line."""

    writer: tuple[int, int, tuple] | None = None  # (proc, instr, vc)
    readers: dict[int, tuple[int, tuple]] = field(default_factory=dict)


class FDRRecorder:
    """Processes an SC access trace into an FDR Memory Races Log."""

    _PROC_BITS = 4
    _DELTA_BITS = 20

    def __init__(self, num_processors: int,
                 log_wars: bool = True) -> None:
        self.num_processors = num_processors
        self.log_wars = log_wars
        self.dependences: list[Dependence] = []
        self.raw_dependences = 0  # before transitive reduction
        self._vc = [[0] * num_processors for _ in range(num_processors)]
        self._lines: dict[int, _LineState] = {}

    def process(self, trace: list[AccessRecord]) -> None:
        """Consume a whole trace in order."""
        for access in trace:
            self.observe(access)

    def observe(self, access: AccessRecord) -> None:
        """Process one access in global order."""
        line = self._lines.setdefault(access.line, _LineState())
        proc = access.processor
        if access.is_write:
            # RAW source for later reads is this write; this write
            # depends on the previous writer (WAW) and readers (WAR).
            if line.writer is not None and line.writer[0] != proc:
                self._dependence(line.writer, proc, access.instruction)
            if self.log_wars:
                for reader, (instr, vc) in line.readers.items():
                    if reader != proc:
                        self._dependence((reader, instr, vc), proc,
                                         access.instruction)
            line.writer = (proc, access.instruction,
                           tuple(self._vc[proc]))
            line.readers = {}
        else:
            if line.writer is not None and line.writer[0] != proc:
                self._dependence(line.writer, proc, access.instruction)
            line.readers[proc] = (access.instruction,
                                  tuple(self._vc[proc]))
        # The processor's own clock component tracks its progress.
        self._vc[proc][proc] = access.instruction

    def _dependence(self, source: tuple[int, int, tuple],
                    dst_proc: int, dst_instr: int) -> None:
        src_proc, src_instr, src_vc = source
        self.raw_dependences += 1
        if self._vc[dst_proc][src_proc] >= src_instr:
            return  # transitively implied (Netzer TR)
        self.dependences.append(Dependence(
            src_proc, src_instr, dst_proc, dst_instr))
        # Absorb everything the source knew at that point, plus the
        # source access itself.
        known = self._vc[dst_proc]
        for index in range(self.num_processors):
            if src_vc[index] > known[index]:
                known[index] = src_vc[index]
        if src_instr > known[src_proc]:
            known[src_proc] = src_instr

    # -- size accounting -------------------------------------------------

    def encode(self) -> tuple[bytes, int]:
        """Delta-encoded Memory Races Log bit stream."""
        writer = BitWriter()
        last_src = [0] * self.num_processors
        last_dst = [0] * self.num_processors
        mask = (1 << self._DELTA_BITS) - 1
        for dep in self.dependences:
            writer.write(dep.src_proc, self._PROC_BITS)
            writer.write(dep.dst_proc, self._PROC_BITS)
            src_delta = (dep.src_instr - last_src[dep.src_proc]) & mask
            dst_delta = (dep.dst_instr - last_dst[dep.dst_proc]) & mask
            writer.write(src_delta, self._DELTA_BITS)
            writer.write(dst_delta, self._DELTA_BITS)
            last_src[dep.src_proc] = dep.src_instr
            last_dst[dep.dst_proc] = dep.dst_instr
        return writer.to_bytes(), writer.bit_length

    @property
    def size_bits(self) -> int:
        """Uncompressed Memory Races Log size."""
        _, bits = self.encode()
        return bits

    def compressed_size_bits(self) -> int:
        """Memory Races Log size after LZ77."""
        payload, bits = self.encode()
        return compressed_size_bits(payload, raw_bits=bits)

    def bits_per_proc_per_kiloinst(self, total_instructions: int,
                                   compressed: bool = True) -> float:
        """The shared comparison metric of Figures 6-8."""
        if total_instructions <= 0:
            return 0.0
        bits = (self.compressed_size_bits() if compressed
                else self.size_bits)
        return bits * 1000.0 / total_instructions


def verify_reduction(trace: list[AccessRecord],
                     dependences: list[Dependence]) -> bool:
    """Soundness check: logged dependences + program order still order
    every conflicting access pair (used by the test suite).

    Replays the trace tracking, for every processor, the latest
    instruction of every other processor it is (transitively) ordered
    after; each conflicting pair must already be covered when its
    second access appears.
    """
    num_procs = 1 + max(a.processor for a in trace) if trace else 0
    vc = [[0] * num_procs for _ in range(num_procs)]
    by_dst: dict[tuple[int, int], list[Dependence]] = {}
    for dep in dependences:
        by_dst.setdefault((dep.dst_proc, dep.dst_instr), []).append(dep)
    lines: dict[int, _LineState] = {}
    for access in trace:
        proc = access.processor
        # Apply any logged dependences that land at this instruction.
        for dep in by_dst.get((proc, access.instruction), []):
            src_vc = vc[dep.src_proc]
            own = vc[proc]
            for index in range(num_procs):
                if src_vc[index] > own[index]:
                    own[index] = src_vc[index]
            if dep.src_instr > own[dep.src_proc]:
                own[dep.src_proc] = dep.src_instr
        line = lines.setdefault(access.line, _LineState())
        if access.is_write:
            if line.writer is not None and line.writer[0] != proc:
                if vc[proc][line.writer[0]] < line.writer[1]:
                    return False
            for reader, (instr, _) in line.readers.items():
                if reader != proc and vc[proc][reader] < instr:
                    return False
            line.writer = (proc, access.instruction, ())
            line.readers = {}
        else:
            if line.writer is not None and line.writer[0] != proc:
                if vc[proc][line.writer[0]] < line.writer[1]:
                    return False
            line.readers[proc] = (access.instruction, ())
        vc[proc][proc] = access.instruction
    return True
