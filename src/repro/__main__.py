"""``python -m repro`` entry point.

The ``__name__`` guard matters: the serve layer's process pools use
the spawn/forkserver start methods, whose worker preparation imports
the parent's main module.  Without the guard every worker would re-run
the CLI instead of executing jobs.  (``repro worker`` fleet processes
are separate ``python -m repro`` invocations and take the normal
path through the guard.)
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
