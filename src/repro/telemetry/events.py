"""Structured trace events keyed to simulated cycles.

One :class:`TraceEvent` is one thing that happened on one *track* of
the simulated machine.  Tracks are named after the hardware they
observe -- ``p0`` .. ``pN`` for the processors, ``arbiter``, ``token``,
``dma``, ``log``, ``directory``, ``replay`` and ``engine`` -- and map
one-to-one onto Perfetto timeline rows.

Three event kinds cover everything the machine emits:

* ``span`` -- an interval ``[cycle, cycle + duration]``: a chunk's
  execution, its commit-token wait, its commit propagation.
* ``instant`` -- a point event: a squash (with its cause), an
  interrupt delivery, a commit grant, a token hop.
* ``counter`` -- a sampled time series: log sizes in bits, directory
  traffic in bytes, replay progress, event-queue depth.

Event times are *simulated cycles*, never wall-clock: a trace is as
deterministic as the run that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KIND_SPAN = "span"
KIND_INSTANT = "instant"
KIND_COUNTER = "counter"

#: Well-known categories (Perfetto ``cat``); free-form strings are fine
#: too, these just keep the machine's emissions greppable.
CAT_EXECUTE = "execute"
CAT_WAIT = "wait"
CAT_COMMIT = "commit"
CAT_SQUASH = "squash"


@dataclass(slots=True)
class TraceEvent:
    """One structured event on one track of the machine timeline."""

    kind: str
    track: str
    name: str
    cycle: float
    duration: float = 0.0
    category: str = ""
    args: dict = field(default_factory=dict)

    @property
    def end_cycle(self) -> float:
        """The cycle at which a span ends (== ``cycle`` for points)."""
        return self.cycle + self.duration

    def as_dict(self) -> dict:
        """JSON-ready flat form (the JSONL wire format)."""
        data = {
            "kind": self.kind,
            "track": self.track,
            "name": self.name,
            "cycle": self.cycle,
        }
        if self.kind == KIND_SPAN:
            data["duration"] = self.duration
        if self.category:
            data["category"] = self.category
        if self.args:
            data["args"] = self.args
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        """Invert :meth:`as_dict`."""
        return cls(
            kind=data["kind"],
            track=data["track"],
            name=data["name"],
            cycle=data["cycle"],
            duration=data.get("duration", 0.0),
            category=data.get("category", ""),
            args=data.get("args", {}),
        )
