"""repro.telemetry: cycle-accurate tracing, metrics, and forensics.

The observability layer of the simulator:

* :class:`Tracer` / :class:`EventTracer` -- structured event capture
  keyed to simulated cycles (:mod:`repro.telemetry.tracer`).  The
  default :data:`NULL_TRACER` is a shared no-op sink, so an untraced
  run records nothing and pays (almost) nothing.
* :class:`MetricsRegistry` -- counters, gauges and histograms that
  components register into (:mod:`repro.telemetry.metrics`).
* Exporters -- Chrome-trace/Perfetto JSON
  (:mod:`repro.telemetry.perfetto`), JSONL event streams
  (:mod:`repro.telemetry.jsonl`), and the registry's flat dump.
* Replay-divergence forensics -- the first-divergence report of
  :mod:`repro.telemetry.forensics`.
"""

from repro.telemetry.events import (
    CAT_COMMIT,
    CAT_EXECUTE,
    CAT_SQUASH,
    CAT_WAIT,
    KIND_COUNTER,
    KIND_INSTANT,
    KIND_SPAN,
    TraceEvent,
)
from repro.telemetry.forensics import (
    DivergenceForensics,
    diagnose_replay,
)
from repro.telemetry.jsonl import (
    load_events_jsonl,
    write_events_jsonl,
)
from repro.telemetry.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.perfetto import (
    chrome_trace,
    commit_spans_per_track,
    write_chrome_trace,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    EventTracer,
    Tracer,
)

__all__ = [
    "CAT_COMMIT",
    "CAT_EXECUTE",
    "CAT_SQUASH",
    "CAT_WAIT",
    "Counter",
    "DivergenceForensics",
    "EventTracer",
    "Gauge",
    "Histogram",
    "KIND_COUNTER",
    "KIND_INSTANT",
    "KIND_SPAN",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "commit_spans_per_track",
    "diagnose_replay",
    "load_events_jsonl",
    "write_chrome_trace",
    "write_events_jsonl",
]
