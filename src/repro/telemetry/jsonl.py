"""JSONL export/import of trace event streams.

One JSON object per line, in emission order -- the format for piping a
trace through ``jq``, diffing two runs' event streams, or feeding
events to external tooling without loading a whole Perfetto document.
The stream round-trips exactly: ``load_events_jsonl`` inverts
``write_events_jsonl`` event-for-event.
"""

from __future__ import annotations

import json

from repro.telemetry.events import TraceEvent


def write_events_jsonl(events: list[TraceEvent], path) -> None:
    """Write one compact JSON object per event to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.as_dict(), sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")


def load_events_jsonl(path) -> list[TraceEvent]:
    """Load an event stream written by :func:`write_events_jsonl`."""
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events
