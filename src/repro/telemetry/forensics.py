"""First-divergence forensics for failed replays.

When a replay diverges, the aggregate determinism report answers
*whether* it happened; this module answers *where and why*.  Two
evidence sources feed one :class:`DivergenceForensics` report:

* a raised :class:`~repro.errors.ReplayDivergenceError`, whose
  structured fields (proc_id, chunk index, expected/actual) and
  attached :class:`DivergenceContext` (the partial replay state the
  machine snapshots before re-raising) localize a hard failure; or
* a fingerprint comparison, when replay runs to completion but commits
  the wrong thing -- the first mismatching global commit is the
  divergence point.

The rendered report shows the diverging processor and chunk, the
expected vs. actual commit record, the last N committed chunks per
processor, and the recorded interleaving window around the divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeadlockError, ReplayDivergenceError


@dataclass
class DivergenceContext:
    """Partial replay state snapshotted when a replay error unwinds."""

    cycle: float
    fingerprints: list[tuple]
    per_proc_fingerprints: dict[int, list[tuple]]
    committed_counts: dict[int, int]
    grants_log: list[int] = field(default_factory=list)


def _fingerprint_proc(fingerprint: tuple):
    """The processor field of a commit fingerprint ('dma' or int)."""
    return fingerprint[0]


def _describe_commit(fingerprint) -> str:
    """Human-readable one-liner for one commit fingerprint.

    Raise sites may also attach scalar expectations (a processor id,
    a quota vector) instead of a full fingerprint; those render as-is.
    """
    if fingerprint is None:
        return "(none)"
    if not isinstance(fingerprint, tuple):
        return repr(fingerprint)
    proc = _fingerprint_proc(fingerprint)
    if proc == "dma" and len(fingerprint) == 3:
        return (f"dma burst #{fingerprint[1]} "
                f"({len(fingerprint[2])} writes)")
    if len(fingerprint) != 7:
        return repr(fingerprint)
    _, seq, piece, is_handler, instructions, writes, _ = fingerprint
    tags = []
    if piece:
        tags.append(f"piece {piece}")
    if is_handler:
        tags.append("handler")
    suffix = f" [{', '.join(tags)}]" if tags else ""
    return (f"p{proc} chunk {seq}: {instructions} instructions, "
            f"{len(writes)} writes{suffix}")


@dataclass
class DivergenceForensics:
    """Everything known about a replay's first divergence."""

    diverged: bool
    reason: str = ""
    proc_id: int | str | None = None
    chunk_index: int | None = None       # global commit index
    expected: tuple | None = None        # recorded commit fingerprint
    actual: tuple | None = None          # replayed commit fingerprint
    cycle: float | None = None
    last_commits: dict = field(default_factory=dict)
    interleaving_window: list = field(default_factory=list)
    log_audit: list = field(default_factory=list)

    def summary(self) -> str:
        """One line naming the diverging processor and chunk."""
        if not self.diverged:
            return "replay deterministic: no divergence"
        where = []
        if self.proc_id is not None:
            name = (self.proc_id if self.proc_id == "dma"
                    else f"processor {self.proc_id}")
            where.append(str(name))
        if self.chunk_index is not None:
            where.append(f"commit #{self.chunk_index}")
        location = " at ".join(where) if where else "unknown location"
        return f"replay DIVERGED at {location}: {self.reason}"

    def render(self, last_n: int = 8) -> str:
        """The full multi-section forensics report."""
        lines = [self.summary()]
        if not self.diverged:
            return lines[0]
        if self.cycle is not None:
            lines.append(f"  failed at cycle {self.cycle:,.0f}")
        if self.expected is not None or self.actual is not None:
            lines.append("")
            lines.append("Expected vs. actual commit:")
            lines.append(f"  expected: {_describe_commit(self.expected)}")
            lines.append(f"  actual:   {_describe_commit(self.actual)}")
        if self.interleaving_window:
            lines.append("")
            lines.append("Recorded interleaving around the divergence:")
            for index, proc, marker in self.interleaving_window:
                pointer = "  >>" if marker else "    "
                name = "dma" if proc == "dma" else f"p{proc}"
                lines.append(f"{pointer} commit #{index}: {name}")
        if self.last_commits:
            lines.append("")
            lines.append(f"Last {last_n} replayed commits per "
                         f"processor:")
            for proc in sorted(self.last_commits,
                               key=lambda p: (p == "dma", p)):
                commits = self.last_commits[proc][-last_n:]
                name = "dma" if proc == "dma" else f"p{proc}"
                lines.append(f"  {name}: {len(self.last_commits[proc])} "
                             f"committed")
                for fingerprint in commits:
                    lines.append(
                        f"      {_describe_commit(fingerprint)}")
        if self.log_audit:
            lines.append("")
            lines.append("Log-consumption audit:")
            for problem in self.log_audit:
                lines.append(f"  - {problem}")
        return "\n".join(lines)


def _window(fingerprints: list[tuple], center: int,
            radius: int = 4) -> list[tuple]:
    """(index, proc, is_center) triples around a global commit."""
    if center is None:
        return []
    start = max(0, center - radius)
    end = min(len(fingerprints), center + radius + 1)
    return [(index, _fingerprint_proc(fingerprints[index]),
             index == center)
            for index in range(start, end)]


def _from_error(recording, error: ReplayDivergenceError,
                radius: int) -> DivergenceForensics:
    context: DivergenceContext | None = error.context
    chunk_index = error.chunk_index
    expected = error.expected
    actual = error.actual
    proc_id = error.proc_id
    last_commits: dict = {}
    cycle = None
    if context is not None:
        cycle = context.cycle
        last_commits = {
            proc: list(entries)
            for proc, entries in context.per_proc_fingerprints.items()
            if entries}
        if chunk_index is None:
            # The next global commit that never happened.
            chunk_index = len(context.fingerprints)
    if (expected is None and chunk_index is not None
            and chunk_index < len(recording.fingerprints)):
        expected = recording.fingerprints[chunk_index]
        if proc_id is None:
            proc_id = _fingerprint_proc(expected)
    return DivergenceForensics(
        diverged=True,
        reason=str(error),
        proc_id=proc_id,
        chunk_index=chunk_index,
        expected=expected,
        actual=actual,
        cycle=cycle,
        last_commits=last_commits,
        interleaving_window=_window(recording.fingerprints,
                                    chunk_index, radius),
    )


def _from_fingerprints(recording, result,
                       radius: int) -> DivergenceForensics:
    expected_all = recording.fingerprints
    actual_all = result.fingerprints
    limit = min(len(expected_all), len(actual_all))
    divergence = None
    for index in range(limit):
        if expected_all[index] != actual_all[index]:
            divergence = index
            break
    if divergence is None and len(expected_all) != len(actual_all):
        divergence = limit
    if divergence is None:
        return DivergenceForensics(diverged=False)
    expected = (expected_all[divergence]
                if divergence < len(expected_all) else None)
    actual = (actual_all[divergence]
              if divergence < len(actual_all) else None)
    sample = actual if actual is not None else expected
    last_commits = {
        proc: list(entries)
        for proc, entries in result.per_proc_fingerprints.items()
        if entries}
    if len(expected_all) == len(actual_all):
        reason = "commit content mismatch"
    else:
        reason = (f"commit count differs: recorded "
                  f"{len(expected_all)}, replayed {len(actual_all)}")
    return DivergenceForensics(
        diverged=True,
        reason=reason,
        proc_id=_fingerprint_proc(sample) if sample else None,
        chunk_index=divergence,
        expected=expected,
        actual=actual,
        last_commits=last_commits,
        interleaving_window=_window(expected_all, divergence, radius),
    )


def diagnose_replay(recording, perturbation=None,
                    use_strata: bool | None = None,
                    tracer=None, radius: int = 4,
                    max_events: int | None = None) -> DivergenceForensics:
    """Replay ``recording`` and report its first divergence (if any).

    Unlike :meth:`DeLoreanSystem.replay` this never raises on a
    corrupted or mismatched log -- the failure *is* the result.  A
    clean, fully-matching replay returns a report with
    ``diverged=False``.
    """
    from repro.machine.system import build_replay_machine

    machine = build_replay_machine(
        recording, perturbation=perturbation, use_strata=use_strata,
        tracer=tracer)
    source = machine.replay_source
    try:
        result = machine.run(max_events)
    except ReplayDivergenceError as error:
        return _from_error(recording, error, radius)
    except DeadlockError as error:
        context = getattr(error, "context", None)
        report = DivergenceForensics(
            diverged=True,
            reason=f"replay deadlocked: {error}",
        )
        if context is not None:
            report.cycle = context.cycle
            report.chunk_index = len(context.fingerprints)
            report.last_commits = {
                proc: list(entries) for proc, entries
                in context.per_proc_fingerprints.items() if entries}
            report.interleaving_window = _window(
                recording.fingerprints, report.chunk_index, radius)
            if report.chunk_index < len(recording.fingerprints):
                # The stuck machine never produced the next recorded
                # commit -- name its owner.
                report.expected = recording.fingerprints[
                    report.chunk_index]
                report.proc_id = _fingerprint_proc(report.expected)
            # The replay may also have already committed the wrong
            # thing before wedging; prefer the first hard mismatch.
            for index, actual in enumerate(context.fingerprints):
                if (index < len(recording.fingerprints)
                        and recording.fingerprints[index] != actual):
                    report.chunk_index = index
                    report.expected = recording.fingerprints[index]
                    report.actual = actual
                    report.proc_id = _fingerprint_proc(actual)
                    report.interleaving_window = _window(
                        recording.fingerprints, index, radius)
                    break
        return report
    report = _from_fingerprints(recording, result, radius)
    audit = source.verify_fully_consumed()
    if audit:
        report.diverged = True
        report.log_audit = audit
        if not report.reason:
            report.reason = "replay left log entries unconsumed"
    return report
