"""A metrics registry: counters, gauges and histograms by name.

Components of the simulated machine *register* their instruments at
construction time and update them through the returned handles; the
registry is the single place that knows every metric's name and value.
This replaces ad-hoc dictionary merging with a structure that can be
dumped flat (:meth:`MetricsRegistry.as_dict`) for the ``repro trace``
metrics artifact and aggregated by sweep-level reporters.

The :data:`NULL_METRICS` registry hands out shared no-op instruments:
a machine built without telemetry still registers everything (so the
wiring is always exercised) but every update is a constant-time no-op
and nothing accumulates.
"""

from __future__ import annotations


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        self.value += amount


class Gauge:
    """A value that goes up and down; holds the last sample."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value


class Histogram:
    """Streaming summary of observed values (count/sum/min/max)."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean in one flat dict."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Create-or-get registry of named instruments.

    Asking twice for the same name returns the same instrument, so
    several components can share a counter; asking for a registered
    name with a different instrument kind is an error (it would
    silently split one metric into two).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name)
            self._instruments[name] = instrument
            return instrument
        if not type(instrument) is factory and \
                not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        """Register (or fetch) the counter called ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Register (or fetch) the gauge called ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Register (or fetch) the histogram called ``name``."""
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(self._instruments.values())

    def as_dict(self, prefix: str | None = None) -> dict[str, float]:
        """Flat ``name -> value`` dump; histograms expand to
        ``name.count`` / ``name.sum`` / ``name.min`` / ``name.max`` /
        ``name.mean`` sub-keys.  ``prefix`` keeps only instruments
        whose name starts with it (one subsystem's slice, e.g.
        ``serve_``)."""
        flat: dict[str, float] = {}
        for name in sorted(self._instruments):
            if prefix is not None and not name.startswith(prefix):
                continue
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                for key, value in instrument.summary().items():
                    flat[f"{name}.{key}"] = value
            else:
                flat[name] = instrument.value
        return flat


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments are shared constant no-ops."""

    _COUNTER = _NullCounter("null")
    _GAUGE = _NullGauge("null")
    _HISTOGRAM = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str) -> Histogram:
        return self._HISTOGRAM

    def as_dict(self, prefix: str | None = None) -> dict[str, float]:
        return {}


#: Shared no-op registry (the instruments it hands out never change).
NULL_METRICS = NullMetricsRegistry()
