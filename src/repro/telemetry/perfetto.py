"""Chrome-trace / Perfetto export of a captured event stream.

Produces the Trace Event Format JSON that ``ui.perfetto.dev`` (and
``chrome://tracing``) load directly: one *thread* per machine track --
``p0`` .. ``pN`` rows first, then the ``arbiter`` / ``token`` / ``dma``
/ ``log`` / ``directory`` / ``replay`` / ``engine`` rows -- inside a
single ``repro`` process.

Mapping:

* ``span``    -> complete events (``"ph": "X"``) with ``ts``/``dur``
* ``instant`` -> instant events (``"ph": "i"``, thread scope)
* ``counter`` -> counter events (``"ph": "C"``)

Timestamps are simulated cycles reported as microseconds (the format's
native unit), so 1 cycle renders as 1 us and relative durations read
exactly as cycle counts.
"""

from __future__ import annotations

import json

from repro.telemetry.events import (
    KIND_COUNTER,
    KIND_INSTANT,
    KIND_SPAN,
    TraceEvent,
)

_PID = 1


def _track_order(tracks) -> list[str]:
    procs = sorted((t for t in tracks
                    if t.startswith("p") and t[1:].isdigit()),
                   key=lambda t: int(t[1:]))
    others = sorted(t for t in tracks
                    if not (t.startswith("p") and t[1:].isdigit()))
    return procs + others


def chrome_trace(events: list[TraceEvent],
                 process_name: str = "repro",
                 metadata: dict | None = None) -> dict:
    """Render events as a Trace Event Format document (a dict).

    ``metadata`` lands under the top-level ``"metadata"`` key --
    Perfetto shows it in the trace info dialog; tests use it to carry
    the run's summary stats alongside the timeline.
    """
    tracks = _track_order({event.track for event in events})
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    trace_events: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": _PID, "tid": 0,
        "args": {"name": process_name},
    }]
    for track in tracks:
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": _PID,
            "tid": tids[track], "args": {"name": track},
        })
        trace_events.append({
            "ph": "M", "name": "thread_sort_index", "pid": _PID,
            "tid": tids[track], "args": {"sort_index": tids[track]},
        })
    for event in events:
        tid = tids[event.track]
        if event.kind == KIND_SPAN:
            entry = {
                "ph": "X", "name": event.name, "pid": _PID, "tid": tid,
                "ts": event.cycle, "dur": event.duration,
            }
        elif event.kind == KIND_INSTANT:
            entry = {
                "ph": "i", "name": event.name, "pid": _PID, "tid": tid,
                "ts": event.cycle, "s": "t",
            }
        elif event.kind == KIND_COUNTER:
            entry = {
                "ph": "C", "name": event.name, "pid": _PID, "tid": tid,
                "ts": event.cycle,
            }
        else:
            raise ValueError(f"unknown event kind {event.kind!r}")
        if event.category:
            entry["cat"] = event.category
        if event.args:
            entry["args"] = dict(event.args)
        trace_events.append(entry)
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        document["metadata"] = metadata
    return document


def write_chrome_trace(events: list[TraceEvent], path,
                       process_name: str = "repro",
                       metadata: dict | None = None) -> None:
    """Serialize :func:`chrome_trace` to ``path`` as JSON."""
    document = chrome_trace(events, process_name=process_name,
                            metadata=metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")


def commit_spans_per_track(document: dict) -> dict[str, int]:
    """Count category-``commit`` complete events per track name.

    The acceptance check for a trace artifact: per-processor committed
    chunk counts in the timeline must equal the run's ``RunStats``.
    """
    names: dict[int, str] = {}
    for entry in document["traceEvents"]:
        if entry.get("ph") == "M" and entry["name"] == "thread_name":
            names[entry["tid"]] = entry["args"]["name"]
    counts: dict[str, int] = {}
    for entry in document["traceEvents"]:
        if entry.get("ph") == "X" and entry.get("cat") == "commit":
            track = names.get(entry["tid"], f"tid{entry['tid']}")
            counts[track] = counts.get(track, 0) + 1
    return counts
