"""The tracer: a sink for structured machine events.

:class:`Tracer` is the null implementation -- every emit method is a
no-op, ``enabled`` is False, and its metrics registry hands out no-op
instruments.  The machine is instrumented unconditionally against this
interface; components guard only the *expensive* emissions (those that
build argument dictionaries) behind ``if tracer.enabled``, so an
untraced run does no per-event work beyond a cheap method call.

:class:`EventTracer` records every event in order and owns a live
:class:`~repro.telemetry.metrics.MetricsRegistry`.  One tracer observes
one machine run; feed its ``events`` to the Perfetto or JSONL exporter
and dump ``metrics.as_dict()`` for the flat metrics artifact.
"""

from __future__ import annotations

from repro.telemetry.events import (
    KIND_COUNTER,
    KIND_INSTANT,
    KIND_SPAN,
    TraceEvent,
)
from repro.telemetry.metrics import (
    NULL_METRICS,
    MetricsRegistry,
)


class Tracer:
    """The null tracer: accepts everything, records nothing."""

    #: Components may branch on this before building event arguments.
    enabled = False

    def __init__(self) -> None:
        self.metrics = NULL_METRICS

    @property
    def events(self) -> tuple:
        """The captured events (always empty for the null tracer)."""
        return ()

    def span(self, track: str, name: str, cycle: float,
             duration: float, category: str = "", **args) -> None:
        """Record an interval ``[cycle, cycle + duration]``."""

    def instant(self, track: str, name: str, cycle: float,
                category: str = "", **args) -> None:
        """Record a point event."""

    def counter(self, track: str, name: str, cycle: float,
                **values) -> None:
        """Record a sample of one or more named time series."""


class EventTracer(Tracer):
    """A tracer that keeps every event (and live metrics)."""

    enabled = True

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self._events: list[TraceEvent] = []

    @property
    def events(self) -> list[TraceEvent]:
        """The captured events, in emission order."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def span(self, track: str, name: str, cycle: float,
             duration: float, category: str = "", **args) -> None:
        self._events.append(TraceEvent(
            kind=KIND_SPAN, track=track, name=name, cycle=cycle,
            duration=max(0.0, duration), category=category, args=args))

    def instant(self, track: str, name: str, cycle: float,
                category: str = "", **args) -> None:
        self._events.append(TraceEvent(
            kind=KIND_INSTANT, track=track, name=name, cycle=cycle,
            category=category, args=args))

    def counter(self, track: str, name: str, cycle: float,
                **values) -> None:
        self._events.append(TraceEvent(
            kind=KIND_COUNTER, track=track, name=name, cycle=cycle,
            args=values))

    def tracks(self) -> list[str]:
        """Distinct track names, processors first, in stable order."""
        seen: dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.track, None)
        procs = sorted((t for t in seen if t.startswith("p")
                        and t[1:].isdigit()),
                       key=lambda t: int(t[1:]))
        others = sorted(t for t in seen
                        if not (t.startswith("p") and t[1:].isdigit()))
        return procs + others

    def events_on(self, track: str) -> list[TraceEvent]:
        """Every event of one track, in emission order."""
        return [event for event in self._events if event.track == track]


#: The shared no-op sink; machine components default to this.
NULL_TRACER = Tracer()
