"""Hardware-style address signatures.

BulkSC encodes the addresses read and written by a chunk into fixed-
size Read (R) and Write (W) signatures (Appendix A; 2 Kbit in Table 5).
Signatures are lossy: intersection may report *false positives* -- two
chunks flagged as conflicting although their exact address sets are
disjoint -- causing spurious squashes exactly as in the real hardware.
False *negatives* are impossible, a property the test suite checks.

Implementation note (documented deviation, see DESIGN.md): a literal
2 Kbit flat Bloom filter over *uniformly random* line addresses -- which
is what synthetic workloads produce -- saturates and reports a conflict
for nearly every chunk pair, while Bulk's real signatures exploit the
structured locality of real address streams to keep false positives
rare.  To reproduce the published *behaviour* (rare alias squashes)
rather than the literal bit count, we model the signature as a sparse
set of hashed keys drawn from a configurable hash space
(``size_bits``, default 2^21): inserting a line stores ``num_hashes``
deterministic keys, and two signatures "intersect" when they share any
key.  This is exactly a Bloom filter stored sparsely; aliasing is
deterministic (replay-stable for identical address sets) and its rate
is ``|W|x|R| x num_hashes^2 / size_bits`` per chunk pair -- calibrated
to the low squash overhead BulkSC reports.  The hardware cost modeled
for traffic purposes remains the 2 Kbit wire format of Table 5
(:mod:`repro.chunks.directory`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

# 64-bit Knuth multiplicative constants, one per supported hash.
_MULTIPLIERS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
)
_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class SignatureConfig:
    """Geometry of a signature: hash-space size and hash count.

    ``size_bits`` is the Bloom hash space (the modeled filter width);
    smaller values raise the alias/false-positive rate.  The default
    2^21 calibrates alias-squash rates to the low overhead published
    for BulkSC; pass 2048 to study a literal flat 2 Kbit filter.
    """

    size_bits: int = 1 << 21
    num_hashes: int = 1

    def __post_init__(self) -> None:
        if self.size_bits <= 0 or self.size_bits & (self.size_bits - 1):
            raise ConfigurationError(
                f"signature size must be a positive power of two, got "
                f"{self.size_bits}")
        if not 1 <= self.num_hashes <= len(_MULTIPLIERS):
            raise ConfigurationError(
                f"num_hashes must be in [1, {len(_MULTIPLIERS)}], got "
                f"{self.num_hashes}")


class Signature:
    """A Bloom filter over cache-line addresses, stored sparsely."""

    __slots__ = ("config", "_keys", "_count")

    def __init__(self, config: SignatureConfig | None = None) -> None:
        self.config = config or SignatureConfig()
        self._keys: set[int] = set()
        self._count = 0  # lines inserted, for occupancy diagnostics

    def _positions(self, line_address: int):
        mask = self.config.size_bits - 1
        for index in range(self.config.num_hashes):
            mixed = ((line_address + index + 1)
                     * _MULTIPLIERS[index]) & _MASK64
            mixed ^= mixed >> 29
            yield mixed & mask

    def insert(self, line_address: int) -> None:
        """Add a cache-line address to the signature."""
        self._keys.update(self._positions(line_address))
        self._count += 1

    def may_contain(self, line_address: int) -> bool:
        """Membership test; may report false positives, never false
        negatives."""
        return all(position in self._keys
                   for position in self._positions(line_address))

    def intersects(self, other: "Signature") -> bool:
        """The arbiter's conflict test: do the filters share a set bit?

        ``False`` proves the underlying address sets are disjoint;
        ``True`` means *possible* overlap.
        """
        if len(self._keys) > len(other._keys):
            return not other._keys.isdisjoint(self._keys)
        return not self._keys.isdisjoint(other._keys)

    def union_update(self, other: "Signature") -> None:
        """OR another signature into this one (Stratifier SR update)."""
        self._keys |= other._keys
        self._count += other._count

    def clear(self) -> None:
        """Reset to the empty signature."""
        self._keys.clear()
        self._count = 0

    def is_empty(self) -> bool:
        """True when no address has been inserted."""
        return not self._keys

    def copy(self) -> "Signature":
        """An independent copy with identical contents."""
        duplicate = Signature(self.config)
        duplicate._keys = set(self._keys)
        duplicate._count = self._count
        return duplicate

    @property
    def population(self) -> int:
        """Number of set bits (occupancy diagnostic)."""
        return len(self._keys)

    @property
    def inserted_lines(self) -> int:
        """Number of insert operations performed."""
        return self._count

    def __repr__(self) -> str:
        return (f"Signature(space={self.config.size_bits}, "
                f"population={self.population})")
