"""Chunk lifecycle: the unit of atomic execution and of logging.

A chunk is a block of consecutive dynamic instructions executed
atomically and in isolation (Section 3.1).  Its stores live in a private
write buffer until commit; its read/write footprints are tracked both
exactly (Python sets, used for verification and statistics) and as
Bloom signatures (used for conflict detection, exactly as the hardware
would -- including false positives).

Chunks are identified by ``(processor, logical_seq)``.  ``logical_seq``
is the per-processor commit sequence number; it is what the Interrupt
log and CS log call the *chunkID*.  A logical chunk can be committed in
two back-to-back *pieces* during replay when an unexpected cache
overflow forces an early commit (Section 4.2.3); pieces share the
logical_seq and consume a single PI-log entry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.chunks.signature import Signature, SignatureConfig
from repro.machine.program import Op, ThreadState


class ChunkState(enum.Enum):
    """Lifecycle states of a chunk."""

    BUILDING = "building"
    COMPLETED = "completed"      # executed, waiting for commit grant
    REQUESTED = "requested"      # commit request sent to the arbiter
    COMMITTING = "committing"    # granted; propagation in flight
    COMMITTED = "committed"
    SQUASHED = "squashed"


class TruncationReason(enum.Enum):
    """Why a chunk ended before reaching the standard size (Table 4).

    ``SIZE_LIMIT`` and ``PROGRAM_END`` are the normal endings.
    ``IO_BOUNDARY`` and ``SPECIAL`` are deterministic truncations (the
    event reappears in replay, so nothing is logged).  ``CACHE_OVERFLOW``
    and ``COLLISION_REDUCED`` are the non-deterministic truncations that
    go to the CS log.  ``CS_FORCED`` marks a replay chunk truncated
    because the CS log said so.
    """

    SIZE_LIMIT = "size_limit"
    PROGRAM_END = "program_end"
    IO_BOUNDARY = "io_boundary"
    SPECIAL = "special"
    CACHE_OVERFLOW = "cache_overflow"
    COLLISION_REDUCED = "collision_reduced"
    CS_FORCED = "cs_forced"

    @property
    def is_nondeterministic(self) -> bool:
        """True for truncations that must be recorded in the CS log."""
        return self in (TruncationReason.CACHE_OVERFLOW,
                        TruncationReason.COLLISION_REDUCED)


@dataclass
class Chunk:
    """One atomically-executed block of instructions."""

    processor: int
    logical_seq: int
    start_state: ThreadState
    signature_config: SignatureConfig
    piece_index: int = 0
    is_handler: bool = False
    state: ChunkState = ChunkState.BUILDING
    instructions: int = 0
    target_size: int = 0
    truncation: TruncationReason = TruncationReason.SIZE_LIMIT
    write_buffer: dict[int, int] = field(default_factory=dict)
    read_lines: set[int] = field(default_factory=set)
    write_lines: set[int] = field(default_factory=set)
    exec_cycles: float = 0.0
    build_time: float = 0.0
    complete_time: float = 0.0
    request_time: float = 0.0
    grant_time: float = 0.0
    commit_time: float = 0.0
    squash_count: int = 0
    # Global chunk-commit count at grant time (PicoLog "commit slot").
    grant_slot: int = -1
    end_state: ThreadState | None = None
    pending_boundary_op: Op | None = None
    io_values: list[int] = field(default_factory=list)
    # The InterruptEvent whose handler this chunk initiates (handler
    # chunks only); kept so a squashed handler chunk can be re-queued.
    handler_event: object | None = None
    # Replay only: this piece ended short of its logical budget due to
    # an unexpected overflow, so no successor chunk may build until its
    # continuation piece commits back-to-back (Section 4.2.3).
    blocks_successors: bool = False

    def __post_init__(self) -> None:
        self.read_signature = Signature(self.signature_config)
        self.write_signature = Signature(self.signature_config)

    def record_read(self, line: int) -> None:
        """Note that the chunk read a cache line."""
        if line not in self.read_lines:
            self.read_lines.add(line)
            self.read_signature.insert(line)

    def record_write(self, line: int) -> None:
        """Note that the chunk wrote a cache line."""
        if line not in self.write_lines:
            self.write_lines.add(line)
            self.write_signature.insert(line)

    def conflicts_with_commit(self, committing: "Chunk") -> bool:
        """Hardware conflict test against a committing chunk.

        A chunk is squashed when the committing chunk's *write* signature
        intersects this chunk's read or write signature (Appendix A).
        Signature aliasing can make this a false positive; it can never
        be a false negative for true conflicts.
        """
        return (committing.write_signature.intersects(self.read_signature)
                or committing.write_signature.intersects(
                    self.write_signature))

    def truly_conflicts_with(self, committing: "Chunk") -> bool:
        """Exact-set conflict test (used by tests to bound false
        positives, never by the simulated hardware)."""
        return (not committing.write_lines.isdisjoint(self.read_lines)
                or not committing.write_lines.isdisjoint(self.write_lines))

    @property
    def is_speculative(self) -> bool:
        """True until the chunk has fully committed."""
        return self.state not in (ChunkState.COMMITTED, ChunkState.SQUASHED)

    @property
    def key(self) -> tuple[int, int, int]:
        """Stable identity: (processor, logical_seq, piece_index)."""
        return (self.processor, self.logical_seq, self.piece_index)

    def commit_fingerprint(self) -> tuple:
        """Digest compared between record and replay for determinism.

        Covers everything architecturally visible about the chunk: which
        processor, which position in that processor's commit sequence,
        how many instructions, the exact buffered writes, and the thread
        state it leaves behind.  Timing fields are deliberately excluded
        -- replay timing legitimately differs.
        """
        end_key = (self.end_state.architectural_key()
                   if self.end_state is not None else None)
        return (
            self.processor,
            self.logical_seq,
            self.piece_index,
            self.is_handler,
            self.instructions,
            tuple(sorted(self.write_buffer.items())),
            end_key,
        )

    def __repr__(self) -> str:
        return (f"Chunk(p{self.processor}, seq={self.logical_seq}"
                f"{'+' + str(self.piece_index) if self.piece_index else ''},"
                f" {self.state.value}, {self.instructions} inst,"
                f" {self.truncation.value})")
