"""Chunk-building processor: interprets one thread as a chunk stream.

The processor is where BulkSC-style execution actually happens.  It owns
one hardware thread's architectural state and turns its program into a
sequence of chunks:

* It executes ops into the current chunk, buffering stores, tracking the
  read/write footprints, and charging coarse timing.
* It keeps up to ``simultaneous_chunks`` uncommitted chunks alive;
  same-processor chunks chain -- a newer chunk reads through the write
  buffers of its uncommitted predecessors.
* It truncates chunks for every reason in Table 4: size limit,
  program end, uncached I/O and special instructions (deterministic),
  speculative cache overflow and repeated collision (non-deterministic).
* It rolls the thread back on squash by restoring the squashed chunk's
  start-state snapshot, re-queueing any interrupt handlers whose
  initiating chunk was squashed.
* It injects interrupt handlers at chunk boundaries and executes
  pending boundary ops (I/O, special instructions) when the truncated
  chunk commits, exactly as Section 4.2 prescribes.

The processor knows nothing about logs or replay: the machine above it
decides chunk targets (standard size, CS-forced size, collision-reduced
size) and supplies the I/O value source, which is what differs between
recording and replaying.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.chunks.cache import SpeculativeCache
from repro.chunks.chunk import Chunk, ChunkState, TruncationReason
from repro.errors import ExecutionError
from repro.machine.events import InterruptEvent, build_handler_ops
from repro.machine.memory import MainMemory
from repro.machine.program import (
    BARRIER_SPIN_COST,
    LOCK_SPIN_COST,
    WORD_MASK,
    Op,
    OpKind,
    ThreadState,
    compute_mix,
)
from repro.machine.timing import MachineConfig
from repro.telemetry.tracer import NULL_TRACER

_STAGE_START = 0
_STAGE_BARRIER_WAIT = 1

_BOUNDARY_KINDS = (OpKind.IO_LOAD, OpKind.IO_STORE, OpKind.SPECIAL)


@dataclass
class ProcessorStats:
    """Per-processor counters consumed by the analysis layer."""

    chunks_committed: int = 0
    instructions_committed: int = 0
    boundary_ops_committed: int = 0
    squashes: int = 0
    squashed_instructions: int = 0
    overflow_truncations: int = 0
    collision_truncations: int = 0
    io_truncations: int = 0
    handler_chunks: int = 0
    stall_cycles: float = 0.0
    spin_instructions: int = 0

    def as_dict(self) -> dict:
        """Flat JSON-ready counter dump (see docs/INTERNALS.md)."""
        return {
            "chunks_committed": self.chunks_committed,
            "instructions_committed": self.instructions_committed,
            "boundary_ops_committed": self.boundary_ops_committed,
            "squashes": self.squashes,
            "squashed_instructions": self.squashed_instructions,
            "overflow_truncations": self.overflow_truncations,
            "collision_truncations": self.collision_truncations,
            "io_truncations": self.io_truncations,
            "handler_chunks": self.handler_chunks,
            "stall_cycles": self.stall_cycles,
            "spin_instructions": self.spin_instructions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProcessorStats":
        """Inverse of :meth:`as_dict`."""
        return cls(**data)


class ChunkProcessor:
    """One simulated core executing its thread as a chunk stream."""

    def __init__(
        self,
        proc_id: int,
        ops: list[Op],
        config: MachineConfig,
        cache: SpeculativeCache,
        tracer=None,
    ) -> None:
        self.proc_id = proc_id
        self.ops = ops
        self.config = config
        self.cache = cache
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._m_squashes = self.tracer.metrics.counter("squashes")
        self.spec_state = ThreadState(thread_id=proc_id)
        if not ops:
            self.spec_state.finished = True
        self.outstanding: list[Chunk] = []
        self.committed_count = 0
        self.next_seq = 1
        self.pending_handlers: deque[InterruptEvent] = deque()
        self.exec_free_time = 0.0
        self.stats = ProcessorStats()
        self._squash_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Build eligibility and chunk construction
    # ------------------------------------------------------------------

    def can_build(self) -> bool:
        """True when the core can start constructing another chunk."""
        if len(self.outstanding) >= self.config.simultaneous_chunks:
            return False
        if self.outstanding and self.outstanding[-1].pending_boundary_op:
            # The newest chunk ends at an uncached instruction; nothing
            # may execute past it until that chunk commits and the
            # boundary op runs (Section 4.2.2).
            return False
        if self.outstanding and self.outstanding[-1].blocks_successors:
            # Replay: the newest chunk must first commit its
            # back-to-back continuation piece (Section 4.2.3).
            return False
        if (self.spec_state.finished and not self.spec_state.in_handler
                and not self._handler_eligible()):
            return False
        return True

    def _handler_eligible(self) -> bool:
        """Can the head pending handler be injected into the next
        chunk?  (Replay handlers are pinned to their logged chunkID.)"""
        if not self.pending_handlers or self.spec_state.in_handler:
            return False
        return self.pending_handlers[0].replay_chunk_id in (
            0, self.next_seq)

    def has_uncommitted_work(self) -> bool:
        """True while chunks are in flight or the thread can still run."""
        return (bool(self.outstanding)
                or not self.spec_state.finished
                or self.spec_state.in_handler
                or bool(self.pending_handlers))

    def squash_count_for(self, seq: int) -> int:
        """Times the chunk with ``seq`` has been squashed and rebuilt."""
        return self._squash_counts.get(seq, 0)

    def build_chunk(
        self,
        now: float,
        target_size: int,
        target_reason: TruncationReason = TruncationReason.SIZE_LIMIT,
        forced_limit: int | None = None,
        memory: MainMemory | None = None,
    ) -> Chunk:
        """Construct and (behaviorally) execute the next chunk.

        ``target_size`` is the instruction budget for this chunk;
        ``target_reason`` is the truncation reason to report if the
        budget is exhausted (``SIZE_LIMIT`` normally, ``CS_FORCED`` or
        ``COLLISION_REDUCED`` when the machine shrank the budget).
        ``forced_limit`` models stochastic early overflow; if hit first
        it wins with reason ``CACHE_OVERFLOW``.
        """
        if memory is None:
            raise ExecutionError("build_chunk requires the main memory")
        if not self.can_build():
            raise ExecutionError(
                f"processor {self.proc_id} cannot build a chunk now")
        # Snapshot *before* handler injection: a squash must roll back
        # to the un-injected state (the handler event is re-queued by
        # squash_from), otherwise the handler would execute twice --
        # once from the restored in-progress state and once from the
        # re-queued event.
        start_state = self.spec_state.snapshot()
        is_handler = False
        if self._handler_eligible():
            event = self.pending_handlers.popleft()
            self.spec_state.enter_handler(build_handler_ops(
                event.vector, event.payload, event.handler_ops))
            is_handler = True
        chunk = Chunk(
            processor=self.proc_id,
            logical_seq=self.next_seq,
            start_state=start_state,
            signature_config=self.config.signature,
            is_handler=is_handler,
        )
        if is_handler:
            chunk.handler_event = event
        chunk.build_time = now
        chunk.target_size = target_size
        self.next_seq += 1
        self._execute_into(chunk, target_size, target_reason,
                           forced_limit, memory)
        chunk.state = ChunkState.BUILDING
        self.outstanding.append(chunk)
        return chunk

    def build_continuation(
        self,
        logical_seq: int,
        piece_index: int,
        now: float,
        remaining_budget: int,
        target_reason: TruncationReason,
        memory: MainMemory,
    ) -> Chunk:
        """Build a back-to-back later piece of a split logical chunk.

        Used during replay when a chunk unexpectedly overflows before
        reaching its recorded size: the shorter piece commits and the
        remainder commits immediately after (Section 4.2.3).  The piece
        shares the parent's ``logical_seq`` and consumes no ordering
        entry; ``next_seq`` is not advanced by pieces.
        """
        chunk = Chunk(
            processor=self.proc_id,
            logical_seq=logical_seq,
            start_state=self.spec_state.snapshot(),
            signature_config=self.config.signature,
            piece_index=piece_index,
            is_handler=False,
        )
        chunk.build_time = now
        chunk.target_size = remaining_budget
        self._execute_into(chunk, remaining_budget, target_reason,
                           None, memory)
        chunk.state = ChunkState.BUILDING
        self.outstanding.append(chunk)
        return chunk

    # ------------------------------------------------------------------
    # The interpreter
    # ------------------------------------------------------------------

    def _current_op(self, state: ThreadState) -> Op | None:
        """Next op to execute, honouring an active interrupt handler."""
        if state.handler_ops is not None:
            if state.handler_index < len(state.handler_ops):
                return state.handler_ops[state.handler_index]
            # Handler finished: resume the interrupted op.
            state.exit_handler()
        if state.op_index >= len(self.ops):
            state.finished = True
            return None
        return self.ops[state.op_index]

    @staticmethod
    def _advance(state: ThreadState) -> None:
        """Step past the current op."""
        if state.handler_ops is not None:
            state.handler_index += 1
        else:
            state.op_index += 1

    def _read_value(
        self,
        address: int,
        current: Chunk,
        memory: MainMemory,
    ) -> int:
        """Load semantics: own buffer, older uncommitted chunks
        (newest first), then committed memory."""
        if address in current.write_buffer:
            return current.write_buffer[address]
        for chunk in reversed(self.outstanding):
            if address in chunk.write_buffer:
                return chunk.write_buffer[address]
        return memory.read(address)

    def _charge_read(self, chunk: Chunk, line: int) -> None:
        """Timing for a load: exposed fraction of any miss latency."""
        level = self.cache.access(line)
        timing = self.config.timing
        if level == "l2":
            chunk.exec_cycles += (timing.l2_hit_cycles
                                  * timing.chunk_load_exposure)
        elif level == "memory":
            chunk.exec_cycles += (timing.memory_cycles
                                  * timing.chunk_load_exposure)

    def _charge_write(self, line: int) -> None:
        """Writes update LRU state but are fully buffered (no stall)."""
        self.cache.access(line)

    def _execute_into(
        self,
        chunk: Chunk,
        target_size: int,
        target_reason: TruncationReason,
        forced_limit: int | None,
        memory: MainMemory,
    ) -> None:
        """Run the thread into ``chunk`` until a truncation condition."""
        state = self.spec_state
        effective = target_size
        reason_at_target = target_reason
        if forced_limit is not None and forced_limit < effective:
            effective = max(1, forced_limit)
            reason_at_target = TruncationReason.CACHE_OVERFLOW
        line_of = self.config.line_of
        while True:
            op = self._current_op(state)
            if op is None:
                chunk.truncation = TruncationReason.PROGRAM_END
                break
            kind = op.kind
            budget = effective - chunk.instructions
            if kind in _BOUNDARY_KINDS:
                chunk.pending_boundary_op = op
                chunk.truncation = (
                    TruncationReason.SPECIAL if kind is OpKind.SPECIAL
                    else TruncationReason.IO_BOUNDARY)
                break
            if kind is OpKind.COMPUTE or kind is OpKind.TRAP:
                if budget < 1:
                    chunk.truncation = reason_at_target
                    break
                remaining = (state.compute_remaining
                             if state.compute_remaining else op.count)
                step = min(remaining, budget)
                state.accumulator = compute_mix(state.accumulator, step)
                chunk.instructions += step
                state.retired += step
                left = remaining - step
                state.compute_remaining = left
                if left == 0:
                    self._advance(state)
                continue
            if kind is OpKind.LOAD:
                if budget < 1:
                    chunk.truncation = reason_at_target
                    break
                line = line_of(op.address)
                state.accumulator = self._read_value(
                    op.address, chunk, memory)
                chunk.record_read(line)
                self._charge_read(chunk, line)
                chunk.instructions += 1
                state.retired += 1
                self._advance(state)
                continue
            if kind is OpKind.STORE:
                if budget < 1:
                    chunk.truncation = reason_at_target
                    break
                line = line_of(op.address)
                if self.cache.write_would_overflow(chunk.write_lines, line):
                    chunk.truncation = TruncationReason.CACHE_OVERFLOW
                    break
                value = (op.value if op.value is not None
                         else state.accumulator)
                chunk.write_buffer[op.address] = value & WORD_MASK
                chunk.record_write(line)
                self._charge_write(line)
                chunk.instructions += 1
                state.retired += 1
                self._advance(state)
                continue
            if kind is OpKind.RMW:
                if budget < 1:
                    chunk.truncation = reason_at_target
                    break
                line = line_of(op.address)
                if self.cache.write_would_overflow(chunk.write_lines, line):
                    chunk.truncation = TruncationReason.CACHE_OVERFLOW
                    break
                old = self._read_value(op.address, chunk, memory)
                delta = op.value if op.value is not None else 1
                chunk.write_buffer[op.address] = (old + delta) & WORD_MASK
                chunk.record_read(line)
                chunk.record_write(line)
                self._charge_read(chunk, line)
                state.accumulator = old
                chunk.instructions += 1
                state.retired += 1
                self._advance(state)
                continue
            if kind is OpKind.LOCK:
                if budget < LOCK_SPIN_COST:
                    chunk.truncation = reason_at_target
                    break
                line = line_of(op.address)
                if self.cache.write_would_overflow(chunk.write_lines, line):
                    chunk.truncation = TruncationReason.CACHE_OVERFLOW
                    break
                value = self._read_value(op.address, chunk, memory)
                chunk.record_read(line)
                self._charge_read(chunk, line)
                if value == 0:
                    chunk.write_buffer[op.address] = 1
                    chunk.record_write(line)
                    chunk.instructions += LOCK_SPIN_COST
                    state.retired += LOCK_SPIN_COST
                    self._advance(state)
                else:
                    # The lock is held and, within an isolated chunk, its
                    # value cannot change: the remaining budget is pure
                    # spinning.  Charge it in bulk.
                    spins = budget // LOCK_SPIN_COST
                    cost = spins * LOCK_SPIN_COST
                    chunk.instructions += cost
                    state.retired += cost
                    self.stats.spin_instructions += cost
                    chunk.truncation = reason_at_target
                    break
                continue
            if kind is OpKind.UNLOCK:
                if budget < 1:
                    chunk.truncation = reason_at_target
                    break
                line = line_of(op.address)
                if self.cache.write_would_overflow(chunk.write_lines, line):
                    chunk.truncation = TruncationReason.CACHE_OVERFLOW
                    break
                chunk.write_buffer[op.address] = 0
                chunk.record_write(line)
                self._charge_write(line)
                chunk.instructions += 1
                state.retired += 1
                self._advance(state)
                continue
            if kind is OpKind.BARRIER:
                if state.stage == _STAGE_START:
                    if budget < 1:
                        chunk.truncation = reason_at_target
                        break
                    line = line_of(op.address)
                    if self.cache.write_would_overflow(
                            chunk.write_lines, line):
                        chunk.truncation = TruncationReason.CACHE_OVERFLOW
                        break
                    old = self._read_value(op.address, chunk, memory)
                    chunk.write_buffer[op.address] = (old + 1) & WORD_MASK
                    chunk.record_read(line)
                    chunk.record_write(line)
                    self._charge_read(chunk, line)
                    state.barrier_target = (
                        (old // op.count + 1) * op.count)
                    state.stage = _STAGE_BARRIER_WAIT
                    chunk.instructions += 1
                    state.retired += 1
                    continue
                # Waiting phase.
                if budget < BARRIER_SPIN_COST:
                    chunk.truncation = reason_at_target
                    break
                line = line_of(op.address)
                value = self._read_value(op.address, chunk, memory)
                chunk.record_read(line)
                self._charge_read(chunk, line)
                if value >= state.barrier_target:
                    state.stage = _STAGE_START
                    state.barrier_target = 0
                    chunk.instructions += BARRIER_SPIN_COST
                    state.retired += BARRIER_SPIN_COST
                    self._advance(state)
                else:
                    spins = budget // BARRIER_SPIN_COST
                    cost = spins * BARRIER_SPIN_COST
                    chunk.instructions += cost
                    state.retired += cost
                    self.stats.spin_instructions += cost
                    chunk.truncation = reason_at_target
                    break
                continue
            raise ExecutionError(f"unhandled op kind {kind}")
        chunk.end_state = state.snapshot()
        chunk.exec_cycles += self.config.timing.instruction_cycles(
            chunk.instructions)

    # ------------------------------------------------------------------
    # Commit, boundary ops, squash, interrupts
    # ------------------------------------------------------------------

    def on_commit(self, chunk: Chunk, io_source) -> None:
        """Finalize a committed chunk on this processor.

        Pops the chunk from the outstanding window, executes its pending
        boundary op (if any) against ``io_source`` -- an object with
        ``io_load(processor, port) -> int`` and
        ``io_store(processor, port, value)`` -- and updates counters.
        """
        if not self.outstanding or self.outstanding[0] is not chunk:
            raise ExecutionError(
                f"processor {self.proc_id} committing out of order: "
                f"{chunk!r}")
        self.outstanding.pop(0)
        self._squash_counts.pop(chunk.logical_seq, None)
        if chunk.piece_index == 0:
            self.committed_count += 1
        self.stats.chunks_committed += 1
        self.stats.instructions_committed += chunk.instructions
        if chunk.is_handler:
            self.stats.handler_chunks += 1
        if chunk.truncation is TruncationReason.CACHE_OVERFLOW:
            self.stats.overflow_truncations += 1
        elif chunk.truncation is TruncationReason.COLLISION_REDUCED:
            self.stats.collision_truncations += 1
        elif chunk.truncation in (TruncationReason.IO_BOUNDARY,
                                  TruncationReason.SPECIAL):
            self.stats.io_truncations += 1
        boundary = chunk.pending_boundary_op
        if boundary is not None:
            self._execute_boundary(chunk, boundary, io_source)

    def _execute_boundary(self, chunk: Chunk, op: Op, io_source) -> None:
        """Run an uncached/special instruction between chunks.

        The instruction executes non-speculatively right after its
        truncated chunk commits; its effects land in the speculative
        frontier state from which the next chunk will build (building
        was blocked on it, so the frontier is exactly this chunk's end
        state).
        """
        state = self.spec_state
        if op.kind is OpKind.IO_LOAD:
            value = io_source.io_load(self.proc_id, op.address)
            state.accumulator = value & WORD_MASK
            chunk.io_values.append(value & WORD_MASK)
        elif op.kind is OpKind.IO_STORE:
            io_source.io_store(self.proc_id, op.address, state.accumulator)
        # SPECIAL instructions have no architectural side effect here.
        state.retired += 1
        self.stats.boundary_ops_committed += 1
        self._advance(state)
        if self._current_op(state) is None:
            state.finished = True

    def squash_from(self, index: int, now: float,
                    cause: str = "") -> list[Chunk]:
        """Squash outstanding chunks ``index`` onward; roll back state.

        Returns the squashed chunks (newest last) so the machine can
        cancel their in-flight events.  Interrupt handlers whose
        initiating chunk was squashed are re-queued for re-injection.
        ``cause`` tags the telemetry events (``collision:pN``,
        ``interrupt``, ...); it has no architectural effect.
        """
        victims = self.outstanding[index:]
        if not victims:
            return []
        del self.outstanding[index:]
        requeue: list[InterruptEvent] = []
        for chunk in victims:
            chunk.state = ChunkState.SQUASHED
            chunk.squash_count += 1
            self.stats.squashes += 1
            self.stats.squashed_instructions += chunk.instructions
            self._m_squashes.inc()
            if self.tracer.enabled:
                self.tracer.instant(
                    f"p{self.proc_id}", f"squash c{chunk.logical_seq}",
                    now, category="squash", seq=chunk.logical_seq,
                    piece=chunk.piece_index,
                    instructions=chunk.instructions,
                    cause=cause or "unknown")
            count = self._squash_counts.get(chunk.logical_seq, 0)
            self._squash_counts[chunk.logical_seq] = count + 1
            if chunk.is_handler and chunk.piece_index == 0:
                requeue.append(chunk.handler_event)
        for event in reversed(requeue):
            self.pending_handlers.appendleft(event)
        self.spec_state.restore(victims[0].start_state)
        # A squashed continuation piece keeps its logical_seq reserved:
        # piece 0 of that sequence number has already committed.
        self.next_seq = victims[0].logical_seq + (
            1 if victims[0].piece_index > 0 else 0)
        self.exec_free_time = now
        return victims

    def squash_if_conflicts(
        self,
        committing: Chunk,
        now: float,
        cause: str = "",
    ) -> list[Chunk]:
        """Squash from the oldest outstanding chunk that (signature-)
        conflicts with a remote committing chunk."""
        for index, chunk in enumerate(self.outstanding):
            if chunk.state is ChunkState.COMMITTING:
                continue
            if chunk.conflicts_with_commit(committing):
                return self.squash_from(index, now, cause=cause)
        return []

    def receive_interrupt(self, event: InterruptEvent, now: float) -> \
            list[Chunk]:
        """Queue an interrupt for handler injection at the next chunk
        boundary.  High-priority interrupts squash every outstanding
        chunk that has not yet been granted commit (Section 4.2.1).
        Returns any squashed chunks."""
        self.pending_handlers.append(event)
        if not event.high_priority:
            return []
        for index, chunk in enumerate(self.outstanding):
            if chunk.state is not ChunkState.COMMITTING:
                return self.squash_from(index, now, cause="interrupt")
        return []

    def committed_fingerprint_state(self) -> tuple:
        """Final architectural digest for determinism comparison."""
        return self.spec_state.architectural_key()
