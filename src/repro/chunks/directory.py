"""Commit propagation, coherence invalidation, and traffic accounting.

When the arbiter lets a chunk commit, its write signature is forwarded
to the directory, which makes the commit visible to all processors
(Figure 4, messages 5/8): lines written by the chunk are invalidated in
every other processor's cache.  The directory also meters network
traffic in bytes so the Section 6.3 traffic comparisons (OrderOnly vs.
RC, PicoLog vs. OrderOnly) can be regenerated.

Message-size model (bytes): a commit request carries the chunk's R+W
signatures plus a header; grants and acks are headers; commit
propagation carries the W signature to the directory plus one header
per invalidated sharer; data refills move whole cache lines.  The
absolute byte counts are coarse, but the *ratios* the paper reports
depend only on relative squash/signature frequencies, which the model
captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chunks.cache import SpeculativeCache
from repro.chunks.chunk import Chunk


@dataclass
class TrafficMeter:
    """Byte counters by message category."""

    signature_bytes: int = 0
    control_bytes: int = 0
    invalidation_bytes: int = 0
    data_bytes: int = 0
    squash_refetch_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """All categories combined."""
        return (self.signature_bytes + self.control_bytes
                + self.invalidation_bytes + self.data_bytes
                + self.squash_refetch_bytes)

    def as_dict(self) -> dict[str, int]:
        """Counters keyed by category plus the total."""
        return {
            "signature_bytes": self.signature_bytes,
            "control_bytes": self.control_bytes,
            "invalidation_bytes": self.invalidation_bytes,
            "data_bytes": self.data_bytes,
            "squash_refetch_bytes": self.squash_refetch_bytes,
            "total_bytes": self.total_bytes,
        }


_HEADER_BYTES = 8


@dataclass
class CommitDirectory:
    """The directory + network of the simulated CMP."""

    line_bytes: int = 32
    signature_bytes_each: int = 256  # 2 Kbit signature
    traffic: TrafficMeter = field(default_factory=TrafficMeter)

    def on_commit_request(self) -> None:
        """Processor -> arbiter: R+W signatures plus header."""
        self.traffic.signature_bytes += 2 * self.signature_bytes_each
        self.traffic.control_bytes += _HEADER_BYTES

    def on_grant(self) -> None:
        """Arbiter -> processor: grant header."""
        self.traffic.control_bytes += _HEADER_BYTES

    def propagate_commit(
        self,
        chunk: Chunk,
        caches: dict[int, SpeculativeCache],
    ) -> int:
        """Make a commit visible: W signature to the directory, then
        invalidate the written lines in every other cache.

        Returns the number of invalidations performed.
        """
        self.traffic.signature_bytes += self.signature_bytes_each
        invalidations = 0
        for proc_id, cache in caches.items():
            if proc_id == chunk.processor:
                continue
            for line in chunk.write_lines:
                before = cache.coherence_invalidations
                cache.invalidate(line)
                if cache.coherence_invalidations > before:
                    invalidations += 1
        self.traffic.invalidation_bytes += invalidations * _HEADER_BYTES
        # Committed dirty lines eventually move to the shared cache.
        self.traffic.data_bytes += len(chunk.write_lines) * self.line_bytes
        return invalidations

    def on_squash(self, chunk: Chunk) -> None:
        """A squashed chunk refetches its footprint on re-execution."""
        lines = len(chunk.read_lines) + len(chunk.write_lines)
        self.traffic.squash_refetch_bytes += lines * self.line_bytes

    def on_data_refill(self, lines: int) -> None:
        """Demand misses moving whole lines."""
        self.traffic.data_bytes += lines * self.line_bytes
