"""Set-associative L1 model with speculative-overflow detection.

Two jobs live here.  First, a timing classifier: every memory access is
looked up in a private LRU L1 and a shared L2 line filter, yielding the
level ("l1" / "l2" / "memory") whose latency the timing model charges.
Second -- the part DeLorean actually depends on -- detection of
*attempted overflow of speculatively updated lines*: a chunk that writes
more distinct lines mapping to one cache set than the cache has ways
must be truncated and committed early (Section 4.2.3).  This is the
dominant source of non-deterministic chunk truncation and therefore of
CS-log entries.

Modeling note (documented in DESIGN.md): we check a chunk's *own*
write-line footprint against the set's full associativity rather than
modeling cross-chunk interference inside the set.  This keeps the
overflow point a deterministic function of the chunk's address stream;
the genuinely non-deterministic component of the real hardware
(wrong-path speculative loads, multi-chunk interference) is modeled by
a separate stochastic early-truncation source in the machine, seeded
differently for record and replay so the CS-log machinery is exercised
both ways.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the private L1 (Table 5: 32KB / 4-way / 32B lines)."""

    sets: int = 128
    ways: int = 4

    def __post_init__(self) -> None:
        if self.sets <= 0 or self.sets & (self.sets - 1):
            raise ConfigurationError(
                f"cache sets must be a positive power of two, got "
                f"{self.sets}")
        if self.ways < 2:
            raise ConfigurationError(
                "a speculative cache needs at least 2 ways")

    def set_of(self, line: int) -> int:
        """Set index a line maps to."""
        return line & (self.sets - 1)

    @property
    def speculative_ways(self) -> int:
        """Distinct lines one chunk may speculatively write into a set
        before an overflow attempt is declared.

        The full associativity is usable: committed lines can always be
        written back to make room, so only a chunk whose *own* write
        footprint exceeds the set capacity must stop (the rare event of
        Section 4.2.3).
        """
        return self.ways


class SharedL2Filter:
    """A bounded LRU set of lines standing in for the shared 8MB L2.

    Only used for timing classification (L2 hit vs. memory); it holds no
    data.  Shared by all processors of one machine.
    """

    def __init__(self, capacity_lines: int = 65536) -> None:
        if capacity_lines < 1:
            raise ConfigurationError("L2 capacity must be positive")
        self.capacity = capacity_lines
        self._lines: OrderedDict[int, None] = OrderedDict()

    def access(self, line: int) -> bool:
        """Touch ``line``; returns True on hit."""
        hit = line in self._lines
        if hit:
            self._lines.move_to_end(line)
        else:
            self._lines[line] = None
            if len(self._lines) > self.capacity:
                self._lines.popitem(last=False)
        return hit

    def __len__(self) -> int:
        return len(self._lines)


class SpeculativeCache:
    """Private L1: LRU timing state plus speculative write tracking."""

    def __init__(
        self,
        config: CacheConfig | None = None,
        shared_l2: SharedL2Filter | None = None,
    ) -> None:
        self.config = config or CacheConfig()
        self.shared_l2 = shared_l2
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.config.sets)]
        self.hits = 0
        self.l2_hits = 0
        self.memory_accesses = 0
        self.coherence_invalidations = 0

    def access(self, line: int) -> str:
        """Classify an access and update LRU state.

        Returns the serving level: ``"l1"``, ``"l2"`` or ``"memory"``.
        """
        cache_set = self._sets[self.config.set_of(line)]
        if line in cache_set:
            cache_set.move_to_end(line)
            self.hits += 1
            return "l1"
        # Miss: consult (and fill) the shared L2 filter, then fill L1.
        level = "memory"
        if self.shared_l2 is not None and self.shared_l2.access(line):
            level = "l2"
        cache_set[line] = None
        if len(cache_set) > self.config.ways:
            cache_set.popitem(last=False)
        if level == "l2":
            self.l2_hits += 1
        else:
            self.memory_accesses += 1
        return level

    def invalidate(self, line: int) -> None:
        """Coherence invalidation caused by a remote chunk commit."""
        cache_set = self._sets[self.config.set_of(line)]
        if line in cache_set:
            del cache_set[line]
            self.coherence_invalidations += 1

    def write_would_overflow(
        self,
        chunk_write_lines: set[int],
        new_line: int,
    ) -> bool:
        """Would adding ``new_line`` to a chunk's speculative write set
        overflow its set?

        True when the chunk already holds ``speculative_ways`` distinct
        written lines in the target set and ``new_line`` is not one of
        them -- the condition under which execution must stop and the
        chunk be truncated (Section 4.2.3).
        """
        if new_line in chunk_write_lines:
            return False
        target_set = self.config.set_of(new_line)
        resident = sum(
            1 for line in chunk_write_lines
            if self.config.set_of(line) == target_set)
        return resident >= self.config.speculative_ways

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the analysis layer."""
        return {
            "l1_hits": self.hits,
            "l2_hits": self.l2_hits,
            "memory_accesses": self.memory_accesses,
            "coherence_invalidations": self.coherence_invalidations,
        }
