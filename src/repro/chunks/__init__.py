"""BulkSC-style chunk-execution substrate.

This subpackage implements the hardware substrate DeLorean builds on
(Appendix A of the paper): Bloom-filter read/write signatures, the chunk
lifecycle, a set-associative L1 cache that detects attempted overflow of
speculative lines, chunk-building processors that interpret concurrent
programs, and the directory that propagates commits.
"""

from repro.chunks.signature import Signature, SignatureConfig
from repro.chunks.chunk import Chunk, ChunkState, TruncationReason
from repro.chunks.cache import CacheConfig, SpeculativeCache
from repro.chunks.processor import ChunkProcessor

__all__ = [
    "Signature",
    "SignatureConfig",
    "Chunk",
    "ChunkState",
    "TruncationReason",
    "CacheConfig",
    "SpeculativeCache",
    "ChunkProcessor",
]
